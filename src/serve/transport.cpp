#include "serve/transport.hpp"

#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/fd_io.hpp"
#include "util/require.hpp"

namespace minim::serve {

// ----------------------------------------------------------- StreamTransport

StreamTransport::StreamTransport(std::istream& in, std::ostream& out,
                                 std::string name)
    : in_(&in), out_(&out), name_(std::move(name)) {}

bool StreamTransport::take_pending_line(std::string& line) {
  const std::size_t newline = pending_.find('\n');
  if (newline == std::string::npos) return false;
  line.assign(pending_, 0, newline);
  pending_.erase(0, newline + 1);
  return true;
}

bool StreamTransport::read_line(std::string& line) {
  if (take_pending_line(line)) return true;
  if (!pending_.empty()) {
    // A partial tail slurped by read_available: complete it with a blocking
    // read; at true EOF the tail itself is the final (unterminated) line.
    std::string rest;
    if (std::getline(*in_, rest)) {
      line = pending_ + rest;
      pending_.clear();
      return true;
    }
    line = std::exchange(pending_, {});
    return true;
  }
  return static_cast<bool>(std::getline(*in_, line));
}

std::size_t StreamTransport::read_available(std::vector<std::string>& lines,
                                            std::size_t max) {
  // Slurp only characters the stream already buffered (`in_avail`): a pipe
  // with nothing pending returns 0 rather than blocking, which keeps an
  // interactive stdin session line-at-a-time while a piped burst still
  // coalesces.  A trailing partial line stays in `pending_` for the next
  // blocking read_line — returning it now would split a request in two.
  std::streambuf& buf = *in_->rdbuf();
  while (buf.in_avail() > 0) {
    const int ch = buf.sbumpc();
    if (ch == std::char_traits<char>::eof()) break;
    pending_.push_back(static_cast<char>(ch));
  }
  std::size_t count = 0;
  std::string line;
  while (count < max && take_pending_line(line)) {
    lines.push_back(line);
    ++count;
  }
  return count;
}

void StreamTransport::write_line(std::string_view line) {
  *out_ << line << "\n";  // buffered; the session flushes once per burst
}

void StreamTransport::flush() { out_->flush(); }

// -------------------------------------------------------- TraceFileTransport

TraceFileTransport::TraceFileTransport(const std::string& path,
                                       std::ostream& out)
    : path_(path), file_(path), out_(&out) {
  MINIM_REQUIRE(file_.good(), "cannot open trace file '" + path + "'");
}

bool TraceFileTransport::read_line(std::string& line) {
  return static_cast<bool>(std::getline(file_, line));
}

std::size_t TraceFileTransport::read_available(std::vector<std::string>& lines,
                                               std::size_t max) {
  std::size_t count = 0;
  std::string line;
  while (count < max && std::getline(file_, line)) {
    lines.push_back(line);
    ++count;
  }
  return count;
}

void TraceFileTransport::write_line(std::string_view line) {
  *out_ << line << "\n";
}

void TraceFileTransport::flush() { out_->flush(); }

// -------------------------------------------------------- TcpServerTransport

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

TcpServerTransport::TcpServerTransport(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket");

  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof address) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw_errno("bind 127.0.0.1");
  }
  if (::listen(listen_fd_, 1) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw_errno("listen");
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

TcpServerTransport::~TcpServerTransport() {
  if (client_fd_ >= 0) ::close(client_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void TcpServerTransport::disconnect() {
  flush();
  if (client_fd_ >= 0) {
    ::close(client_fd_);
    client_fd_ = -1;
  }
  eof_ = true;  // no replacement client: the session is over
}

bool TcpServerTransport::accept_client() {
  while (true) {
    client_fd_ = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd_ >= 0) return true;
    if (errno != EINTR) return false;
  }
}

bool TcpServerTransport::pop_buffered_line(std::string& line) {
  const std::size_t newline = buffer_.find('\n');
  if (newline != std::string::npos) {
    line.assign(buffer_, 0, newline);
    buffer_.erase(0, newline + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    return true;
  }
  if (eof_ && !buffer_.empty()) {
    // Final unterminated line (a client that closed without a newline).
    line = std::exchange(buffer_, {});
    if (!line.empty() && line.back() == '\r') line.pop_back();
    return true;
  }
  return false;
}

bool TcpServerTransport::read_line(std::string& line) {
  if (client_fd_ < 0 && (eof_ || !accept_client())) return false;
  flush();  // never block for input while responses sit in the buffer
  while (true) {
    if (pop_buffered_line(line)) return true;
    if (eof_) return false;
    char chunk[4096];
    const ssize_t got = ::recv(client_fd_, chunk, sizeof chunk, 0);
    if (got > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(got));
    } else if (got == 0) {
      eof_ = true;
    } else if (errno != EINTR) {
      eof_ = true;  // connection error: treat as disconnect
    }
  }
}

std::size_t TcpServerTransport::read_available(std::vector<std::string>& lines,
                                               std::size_t max) {
  if (client_fd_ < 0) return 0;
  // Top the buffer up with whatever the kernel already received, without
  // blocking: a client that pipelined a burst lands in one batch.
  while (!eof_) {
    char chunk[4096];
    const ssize_t got = ::recv(client_fd_, chunk, sizeof chunk, MSG_DONTWAIT);
    if (got > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(got));
      if (static_cast<std::size_t>(got) < sizeof chunk) break;
    } else if (got == 0) {
      eof_ = true;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    } else if (errno != EINTR) {
      eof_ = true;
    }
  }
  std::size_t count = 0;
  std::string line;
  while (count < max && pop_buffered_line(line)) {
    lines.push_back(line);
    ++count;
  }
  return count;
}

void TcpServerTransport::send_all(const char* data, std::size_t size) {
  // Short-write/EINTR handling lives in util::write_all; a false return
  // means the client went away mid-response — the next read sees EOF.
  util::write_all(client_fd_, data, size);
}

void TcpServerTransport::write_line(std::string_view line) {
  if (client_fd_ < 0) return;  // nothing connected; response has no reader
  out_buffer_.append(line);
  out_buffer_.push_back('\n');
}

void TcpServerTransport::flush() {
  if (client_fd_ < 0 || out_buffer_.empty()) {
    out_buffer_.clear();
    return;
  }
  send_all(out_buffer_.data(), out_buffer_.size());
  out_buffer_.clear();
}

std::string TcpServerTransport::describe() const {
  return "tcp:127.0.0.1:" + std::to_string(port_);
}

}  // namespace minim::serve
