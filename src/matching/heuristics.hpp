#pragma once

#include "matching/bipartite_graph.hpp"

/// \file heuristics.hpp
/// \brief Inexact matchers used as ablation baselines.
///
/// The ablation bench compares exact max-weight matching against a greedy
/// heuristic to quantify how much of Minim's quality actually depends on the
/// exact matching step the paper treats as a black box.

namespace minim::matching {

/// Greedy matcher: scans edges by descending weight (ties by left id, then
/// right id — deterministic) and takes every edge whose endpoints are free.
/// 1/2-approximation of max weight; not minimal in general.
MatchingResult greedy_matching(const BipartiteGraph& g);

}  // namespace minim::matching
