#include "matching/brute_force.hpp"

#include <vector>

#include "util/require.hpp"

namespace minim::matching {

namespace {

struct Search {
  const BipartiteGraph& g;
  std::vector<std::uint32_t> current;
  std::vector<char> right_used;
  Weight current_weight = 0;
  MatchingResult best;

  explicit Search(const BipartiteGraph& graph)
      : g(graph),
        current(graph.left_size(), MatchingResult::kUnmatched),
        right_used(graph.right_size(), 0) {
    best.left_to_right = current;
    best.total_weight = 0;
  }

  void run(std::uint32_t l) {
    if (l == g.left_size()) {
      if (current_weight > best.total_weight) {
        best.total_weight = current_weight;
        best.left_to_right = current;
      }
      return;
    }
    // Option 1: leave l unmatched.
    run(l + 1);
    // Option 2: match l along each free incident edge.
    for (std::uint32_t e : g.edges_of_left(l)) {
      const auto& edge = g.edges()[e];
      if (right_used[edge.right]) continue;
      right_used[edge.right] = 1;
      current[l] = edge.right;
      current_weight += edge.weight;
      run(l + 1);
      current_weight -= edge.weight;
      current[l] = MatchingResult::kUnmatched;
      right_used[edge.right] = 0;
    }
  }
};

}  // namespace

MatchingResult brute_force_max_weight_matching(const BipartiteGraph& g) {
  MINIM_REQUIRE(g.left_size() <= 12, "brute force matcher limited to 12 left vertices");
  Search search(g);
  search.run(0);
  return search.best;
}

}  // namespace minim::matching
