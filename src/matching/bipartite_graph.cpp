#include "matching/bipartite_graph.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace minim::matching {

BipartiteGraph::BipartiteGraph(std::uint32_t left_size, std::uint32_t right_size)
    : left_size_(left_size), right_size_(right_size), left_adj_(left_size) {}

void BipartiteGraph::add_edge(std::uint32_t l, std::uint32_t r, Weight w) {
  MINIM_REQUIRE(l < left_size_, "bipartite edge: left vertex out of range");
  MINIM_REQUIRE(r < right_size_, "bipartite edge: right vertex out of range");
  MINIM_REQUIRE(w > 0, "bipartite edge weights must be positive");
  MINIM_REQUIRE(!has_edge(l, r), "bipartite edge added twice");
  left_adj_[l].push_back(static_cast<std::uint32_t>(edges_.size()));
  edges_.push_back(BipartiteEdge{l, r, w});
}

const std::vector<std::uint32_t>& BipartiteGraph::edges_of_left(std::uint32_t l) const {
  MINIM_REQUIRE(l < left_size_, "edges_of_left: out of range");
  return left_adj_[l];
}

Weight BipartiteGraph::weight(std::uint32_t l, std::uint32_t r) const {
  MINIM_REQUIRE(l < left_size_ && r < right_size_, "weight: vertex out of range");
  for (std::uint32_t e : left_adj_[l])
    if (edges_[e].right == r) return edges_[e].weight;
  return 0;
}

bool is_valid_matching(const BipartiteGraph& g, const MatchingResult& m) {
  if (m.left_to_right.size() != g.left_size()) return false;
  std::vector<char> right_used(g.right_size(), 0);
  Weight total = 0;
  for (std::uint32_t l = 0; l < g.left_size(); ++l) {
    const std::uint32_t r = m.left_to_right[l];
    if (r == MatchingResult::kUnmatched) continue;
    if (r >= g.right_size()) return false;
    if (right_used[r]) return false;
    right_used[r] = 1;
    const Weight w = g.weight(l, r);
    if (w <= 0) return false;  // matched along a non-edge
    total += w;
  }
  return total == m.total_weight;
}

}  // namespace minim::matching
