#pragma once

#include "matching/bipartite_graph.hpp"

/// \file hungarian.hpp
/// \brief Exact maximum-weight bipartite matching (Kuhn–Munkres).
///
/// This is the paper's black box [14]: RecodeOnJoin/RecodeOnMove require a
/// *maximum-weight* matching on G' — not merely maximum-cardinality — because
/// the weight-3 old-color edges are what make the recoding minimal
/// (Theorem 4.1.8) and the weight-1 edges what make it optimal among minimal
/// strategies (Theorem 4.1.9).
///
/// Implementation: shortest-augmenting-path Hungarian algorithm with dual
/// potentials on the rectangular cost matrix, O(L² · R) for L left and R
/// right vertices.  Maximum-weight (possibly non-perfect) matching is reduced
/// to minimum-cost row-perfect assignment by padding with zero-weight slots:
/// a row assigned at weight 0 is reported unmatched.  All arithmetic is
/// integral, so results are exact.

namespace minim::matching {

/// Returns a maximum-weight matching of `g`.  Left vertices may stay
/// unmatched (exactly when every feasible color is taken by a heavier use).
MatchingResult max_weight_matching(const BipartiteGraph& g);

}  // namespace minim::matching
