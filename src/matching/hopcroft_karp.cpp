#include "matching/hopcroft_karp.hpp"

#include <limits>
#include <queue>
#include <vector>

namespace minim::matching {

namespace {

constexpr std::uint32_t kNil = std::numeric_limits<std::uint32_t>::max();

struct HopcroftKarp {
  const BipartiteGraph& g;
  std::vector<std::uint32_t> match_l;  // left -> right
  std::vector<std::uint32_t> match_r;  // right -> left
  std::vector<std::uint32_t> dist;

  explicit HopcroftKarp(const BipartiteGraph& graph)
      : g(graph),
        match_l(graph.left_size(), kNil),
        match_r(graph.right_size(), kNil),
        dist(graph.left_size(), 0) {}

  bool bfs() {
    std::queue<std::uint32_t> q;
    bool reachable_free = false;
    for (std::uint32_t l = 0; l < g.left_size(); ++l) {
      if (match_l[l] == kNil) {
        dist[l] = 0;
        q.push(l);
      } else {
        dist[l] = kNil;
      }
    }
    while (!q.empty()) {
      const std::uint32_t l = q.front();
      q.pop();
      for (std::uint32_t e : g.edges_of_left(l)) {
        const std::uint32_t r = g.edges()[e].right;
        const std::uint32_t next = match_r[r];
        if (next == kNil) {
          reachable_free = true;
        } else if (dist[next] == kNil) {
          dist[next] = dist[l] + 1;
          q.push(next);
        }
      }
    }
    return reachable_free;
  }

  bool dfs(std::uint32_t l) {
    for (std::uint32_t e : g.edges_of_left(l)) {
      const std::uint32_t r = g.edges()[e].right;
      const std::uint32_t next = match_r[r];
      if (next == kNil || (dist[next] == dist[l] + 1 && dfs(next))) {
        match_l[l] = r;
        match_r[r] = l;
        return true;
      }
    }
    dist[l] = kNil;
    return false;
  }

  void solve() {
    while (bfs()) {
      for (std::uint32_t l = 0; l < g.left_size(); ++l)
        if (match_l[l] == kNil) dfs(l);
    }
  }
};

}  // namespace

MatchingResult max_cardinality_matching(const BipartiteGraph& g) {
  HopcroftKarp hk(g);
  hk.solve();
  MatchingResult result;
  result.left_to_right.assign(g.left_size(), MatchingResult::kUnmatched);
  for (std::uint32_t l = 0; l < g.left_size(); ++l) {
    if (hk.match_l[l] == kNil) continue;
    result.left_to_right[l] = hk.match_l[l];
    result.total_weight += g.weight(l, hk.match_l[l]);
  }
  return result;
}

}  // namespace minim::matching
