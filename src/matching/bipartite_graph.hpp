#pragma once

#include <cstdint>
#include <vector>

/// \file bipartite_graph.hpp
/// \brief Weighted bipartite graphs for the recoding matching step.
///
/// RecodeOnJoin/RecodeOnMove build the graph G' = (V1 ∪ V2, E') where V1 is
/// the set of nodes to recode, V2 the color pool {1..max}, and an edge
/// (u, c) exists iff node u may legally take color c given the colors of all
/// nodes *outside* V1.  Edge weights are 3 for "u's old color" and 1
/// otherwise (paper, Section 4.1); the weight type is integral because the
/// optimality proofs are exact-arithmetic arguments.

namespace minim::matching {

using Weight = std::int64_t;

/// One weighted left->right edge.
struct BipartiteEdge {
  std::uint32_t left;
  std::uint32_t right;
  Weight weight;
};

/// Adjacency-list bipartite graph with `left_size` x `right_size` vertices.
class BipartiteGraph {
 public:
  BipartiteGraph(std::uint32_t left_size, std::uint32_t right_size);

  /// Adds edge (l, r, w).  Requires valid endpoints and w > 0.
  /// Parallel edges are rejected.
  void add_edge(std::uint32_t l, std::uint32_t r, Weight w);

  std::uint32_t left_size() const { return left_size_; }
  std::uint32_t right_size() const { return right_size_; }
  std::size_t edge_count() const { return edges_.size(); }

  const std::vector<BipartiteEdge>& edges() const { return edges_; }

  /// Edges incident to left vertex `l` (indices into `edges()`).
  const std::vector<std::uint32_t>& edges_of_left(std::uint32_t l) const;

  /// Weight of (l, r); 0 when absent.
  Weight weight(std::uint32_t l, std::uint32_t r) const;

  bool has_edge(std::uint32_t l, std::uint32_t r) const { return weight(l, r) > 0; }

 private:
  std::uint32_t left_size_;
  std::uint32_t right_size_;
  std::vector<BipartiteEdge> edges_;
  std::vector<std::vector<std::uint32_t>> left_adj_;
};

/// A matching: `left_to_right[l]` is the matched right vertex or `kUnmatched`.
struct MatchingResult {
  static constexpr std::uint32_t kUnmatched = static_cast<std::uint32_t>(-1);

  std::vector<std::uint32_t> left_to_right;
  Weight total_weight = 0;

  std::size_t cardinality() const {
    std::size_t n = 0;
    for (auto r : left_to_right)
      if (r != kUnmatched) ++n;
    return n;
  }
};

/// Checks `m` is a valid matching on `g` (edges exist, right vertices unique)
/// and that `total_weight` is consistent.  Used by tests and debug builds.
bool is_valid_matching(const BipartiteGraph& g, const MatchingResult& m);

}  // namespace minim::matching
