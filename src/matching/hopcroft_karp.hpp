#pragma once

#include "matching/bipartite_graph.hpp"

/// \file hopcroft_karp.hpp
/// \brief Maximum-cardinality bipartite matching in O(E sqrt(V)).
///
/// Used by the weight-ablation bench ("does maximizing cardinality instead of
/// weight still give minimal recoding?" — it does not) and as an independent
/// cross-check that the Hungarian solver reaches maximum cardinality whenever
/// weights are uniform.

namespace minim::matching {

/// Returns a maximum-cardinality matching (weights ignored for selection;
/// `total_weight` reports the sum of weights of the chosen edges).
MatchingResult max_cardinality_matching(const BipartiteGraph& g);

}  // namespace minim::matching
