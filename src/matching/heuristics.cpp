#include "matching/heuristics.hpp"

#include <algorithm>

namespace minim::matching {

MatchingResult greedy_matching(const BipartiteGraph& g) {
  std::vector<BipartiteEdge> edges(g.edges());
  std::sort(edges.begin(), edges.end(), [](const BipartiteEdge& a, const BipartiteEdge& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    if (a.left != b.left) return a.left < b.left;
    return a.right < b.right;
  });
  MatchingResult result;
  result.left_to_right.assign(g.left_size(), MatchingResult::kUnmatched);
  std::vector<char> right_used(g.right_size(), 0);
  for (const auto& e : edges) {
    if (result.left_to_right[e.left] != MatchingResult::kUnmatched) continue;
    if (right_used[e.right]) continue;
    result.left_to_right[e.left] = e.right;
    right_used[e.right] = 1;
    result.total_weight += e.weight;
  }
  return result;
}

}  // namespace minim::matching
