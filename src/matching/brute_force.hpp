#pragma once

#include "matching/bipartite_graph.hpp"

/// \file brute_force.hpp
/// \brief Exhaustive maximum-weight matching — the test oracle.
///
/// Enumerates every matching by branching per left vertex (leave unmatched,
/// or take any free incident edge).  Exponential; callers keep |V1| small.
/// Property tests compare `max_weight_matching` against this on thousands of
/// random small graphs.

namespace minim::matching {

/// Exact max-weight matching by exhaustive search.  Requires
/// `g.left_size() <= 12` to bound the search.
MatchingResult brute_force_max_weight_matching(const BipartiteGraph& g);

}  // namespace minim::matching
