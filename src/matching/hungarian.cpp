#include "matching/hungarian.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace minim::matching {

MatchingResult max_weight_matching(const BipartiteGraph& g) {
  const std::size_t n = g.left_size();   // rows
  MatchingResult result;
  result.left_to_right.assign(n, MatchingResult::kUnmatched);
  if (n == 0) return result;

  // Pad columns so a row-perfect assignment always exists: columns
  // [0, R) are real right vertices, [R, R+n) are per-row dummy slots.
  const std::size_t r_real = g.right_size();
  const std::size_t m = r_real + n;

  // Costs: minimize (w_max - w). Non-edges and dummy slots cost w_max
  // (equivalent to weight 0), so they are used only when unavoidable.
  Weight w_max = 0;
  for (const auto& e : g.edges()) w_max = std::max(w_max, e.weight);
  if (w_max == 0) return result;  // no edges at all

  // Dense cost lookup, row-major. Sizes here are small (|V1| ~ degree bound,
  // |V2| ~ max color), so dense is both faster and simpler than sparse.
  std::vector<Weight> cost(n * m, w_max);
  for (const auto& e : g.edges())
    cost[static_cast<std::size_t>(e.left) * m + e.right] = w_max - e.weight;

  constexpr Weight kInf = std::numeric_limits<Weight>::max() / 4;

  // e-maxx formulation with 1-based potentials; p[j] = row matched to col j.
  std::vector<Weight> u(n + 1, 0);
  std::vector<Weight> v(m + 1, 0);
  std::vector<std::size_t> p(m + 1, 0);    // 0 = free column
  std::vector<std::size_t> way(m + 1, 0);

  for (std::size_t i = 1; i <= n; ++i) {
    p[0] = i;
    std::size_t j0 = 0;
    std::vector<Weight> minv(m + 1, kInf);
    std::vector<char> used(m + 1, 0);
    do {
      used[j0] = 1;
      const std::size_t i0 = p[j0];
      Weight delta = kInf;
      std::size_t j1 = 0;
      const Weight* row = cost.data() + (i0 - 1) * m;
      for (std::size_t j = 1; j <= m; ++j) {
        if (used[j]) continue;
        const Weight cur = row[j - 1] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= m; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    // Augment along the alternating path.
    do {
      const std::size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  for (std::size_t j = 1; j <= m; ++j) {
    if (p[j] == 0) continue;
    const std::size_t i = p[j] - 1;
    if (j > r_real) continue;                          // dummy slot: unmatched
    const Weight w = g.weight(static_cast<std::uint32_t>(i),
                              static_cast<std::uint32_t>(j - 1));
    if (w <= 0) continue;                              // zero-cost non-edge
    result.left_to_right[i] = static_cast<std::uint32_t>(j - 1);
    result.total_weight += w;
  }
  return result;
}

}  // namespace minim::matching
