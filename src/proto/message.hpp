#pragma once

#include <cstdint>
#include <string>

#include "net/network.hpp"

/// \file message.hpp
/// \brief Protocol message model for the distributed execution substrate.
///
/// The paper's algorithms are distributed: RecodeOnJoin's steps 1, 2 and 6
/// are message exchanges ("obtain the constraints...", "dissipate this
/// information...").  The proto module executes the same algorithms through
/// explicit messages so the locality/overhead claims can be measured rather
/// than asserted.  Delivery is reliable and eventually ordered, matching the
/// assumptions of the termination theorems (no crashes, eventual delivery,
/// sequenced reconfigurations).

namespace minim::proto {

enum class MessageType : std::uint8_t {
  kBeacon,            ///< periodic presence announcement (how n learns 1n ∪ 2n)
  kConstraintQuery,   ///< n asks a from-neighbor for its color + constraints
  kConstraintReply,   ///< neighbor's old color and constraint color list
  kCommit,            ///< n tells a node its new color and the switch round
  kCommitAck,         ///< recipient confirms the color switch
};

const char* to_string(MessageType type);

/// One protocol message.  `hops` is the unicast routing cost actually paid:
/// replies from a from-neighbor u of n may have to be relayed when there is
/// no u <- n link (power asymmetry), so we charge the undirected shortest
/// path length.
struct Message {
  net::NodeId from = net::kInvalidNode;
  net::NodeId to = net::kInvalidNode;
  MessageType type = MessageType::kBeacon;
  std::size_t payload_items = 0;  ///< colors/constraints carried
  std::size_t hops = 1;

  std::string to_string() const;
};

/// Aggregate cost of one protocol run.
struct ProtocolCost {
  std::size_t messages = 0;       ///< message count
  std::size_t hop_count = 0;      ///< sum of per-message hops (radio transmissions)
  std::size_t payload_items = 0;  ///< total colors/constraints shipped
  std::size_t rounds = 0;         ///< synchronous communication rounds

  void add(const Message& m) {
    ++messages;
    hop_count += m.hops;
    payload_items += m.payload_items;
  }
};

}  // namespace minim::proto
