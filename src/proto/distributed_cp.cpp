#include "proto/distributed_cp.hpp"

#include <algorithm>

namespace minim::proto {

DistributedCpResult DistributedCp::run(const net::AdhocNetwork& net,
                                       net::CodeAssignment& assignment, net::NodeId n,
                                       core::EventType event, double old_range) const {
  DistributedCpResult result;
  strategies::CpStrategy cp(order_, vicinity_);
  strategies::CpStrategy::RunStats stats;
  cp.set_stats_sink(&stats);

  switch (event) {
    case core::EventType::kJoin:
      result.report = cp.on_join(net, assignment, n);
      break;
    case core::EventType::kMove:
      result.report = cp.on_move(net, assignment, n);
      break;
    case core::EventType::kPowerIncrease:
    case core::EventType::kPowerDecrease:
      result.report = cp.on_power_change(net, assignment, n, old_range);
      break;
    case core::EventType::kLeave:
      result.report = cp.on_leave(net, assignment, n);
      break;
  }

  // Beacons: the event node hears its in-neighborhood announce itself.
  if (event == core::EventType::kJoin || event == core::EventType::kMove) {
    for (std::size_t i = 0; i < net.heard_by(n).size(); ++i) {
      const Message m{net.heard_by(n)[static_cast<std::size_t>(i)], n,
                      MessageType::kBeacon, 1, 1};
      result.cost.add(m);
    }
    ++result.cost.rounds;
  }

  // Vicinity snapshots: one relayed query/reply pair per candidate, payload
  // proportional to the ball it must learn the colors of.
  for (std::size_t i = 0; i < stats.candidates.size(); ++i) {
    const net::NodeId candidate = stats.candidates[i];
    const std::size_t ball = stats.vicinity_sizes[i];
    result.cost.add(Message{candidate, candidate, MessageType::kConstraintQuery, 0, 2});
    result.cost.add(Message{candidate, candidate, MessageType::kConstraintReply,
                            ball, 2});
  }
  if (!stats.candidates.empty()) ++result.cost.rounds;

  // Coordination rounds: every pending candidate announces its state with a
  // broadcast relayed by its direct neighbors so the 2-hop vicinity hears it.
  const auto& g = net.graph();
  auto relay_hops = [&g](net::NodeId v) {
    return 1 + g.out_degree(v);  // own transmission + one relay per neighbor
  };
  for (std::size_t round = 0; round < stats.pending_per_round.size(); ++round) {
    // `pending_per_round[round]` candidates were uncolored entering the
    // round; each announces once.  We charge the average relay cost using
    // the candidates' own degrees, iterating deterministically.
    std::size_t announced = 0;
    for (std::size_t i = 0; i < stats.candidates.size() &&
                            announced < stats.pending_per_round[round];
         ++i, ++announced) {
      const net::NodeId candidate = stats.candidates[i];
      result.cost.add(Message{candidate, candidate, MessageType::kBeacon, 1,
                              relay_hops(candidate)});
    }
    ++result.cost.rounds;
  }

  // Commit: every candidate announces its final color to its vicinity.
  for (net::NodeId candidate : stats.candidates)
    result.cost.add(
        Message{candidate, candidate, MessageType::kCommit, 1, relay_hops(candidate)});
  if (!stats.candidates.empty()) ++result.cost.rounds;

  result.report.messages = result.cost.messages;
  return result;
}

DistributedCpResult DistributedCp::join(const net::AdhocNetwork& net,
                                        net::CodeAssignment& assignment,
                                        net::NodeId n) const {
  return run(net, assignment, n, core::EventType::kJoin, 0.0);
}

DistributedCpResult DistributedCp::move(const net::AdhocNetwork& net,
                                        net::CodeAssignment& assignment,
                                        net::NodeId n) const {
  return run(net, assignment, n, core::EventType::kMove, 0.0);
}

DistributedCpResult DistributedCp::power_increase(const net::AdhocNetwork& net,
                                                  net::CodeAssignment& assignment,
                                                  net::NodeId n,
                                                  double old_range) const {
  return run(net, assignment, n, core::EventType::kPowerIncrease, old_range);
}

}  // namespace minim::proto
