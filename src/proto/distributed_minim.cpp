#include "proto/distributed_minim.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "net/constraints.hpp"

namespace minim::proto {

namespace {

std::size_t unicast_hops(const net::AdhocNetwork& net, net::NodeId from, net::NodeId to) {
  const std::size_t d = graph::hop_distance(net.graph(), from, to);
  // Unreachable should not happen under Minimal Connectivity; charge 1 so
  // accounting stays defined even on degenerate test topologies.
  return d == static_cast<std::size_t>(-1) || d == 0 ? 1 : d;
}

}  // namespace

DistributedResult DistributedMinim::run_matching_protocol(
    const net::AdhocNetwork& net, net::CodeAssignment& assignment, net::NodeId n,
    core::EventType event) const {
  DistributedResult result;
  const auto& from_neighbors = net.heard_by(n);

  // Round 1: beacons.  Every from-neighbor's periodic beacon reaches n
  // directly (u -> n is a real edge), announcing its presence and id.
  for (net::NodeId u : from_neighbors) {
    Message m{u, n, MessageType::kBeacon, 1, 1};
    result.cost.add(m);
    result.log.push_back(m);
  }
  ++result.cost.rounds;

  // Round 2: constraint queries.
  for (net::NodeId u : from_neighbors) {
    Message m{n, u, MessageType::kConstraintQuery, 0, unicast_hops(net, n, u)};
    result.cost.add(m);
    result.log.push_back(m);
  }
  ++result.cost.rounds;

  // Round 3: constraint replies.  Each from-neighbor ships its old color
  // plus the colors its outside conflict partners pin (what the centralized
  // builder calls its forbidden set).
  std::vector<net::NodeId> v1(from_neighbors.begin(), from_neighbors.end());
  v1.push_back(n);
  std::sort(v1.begin(), v1.end());
  auto in_v1 = [&v1](net::NodeId v) {
    return std::binary_search(v1.begin(), v1.end(), v);
  };
  for (net::NodeId u : from_neighbors) {
    const auto constraints = net::forbidden_colors(net, assignment, u, in_v1);
    Message m{u, n, MessageType::kConstraintReply, constraints.size() + 1,
              unicast_hops(net, u, n)};
    result.cost.add(m);
    result.log.push_back(m);
  }
  ++result.cost.rounds;

  // Local computation at n: steps 3-5 of RecodeOnJoin — delegated to the
  // exact same code path the centralized strategy uses, guaranteeing the
  // distributed execution cannot diverge from the proven algorithm.
  core::MinimStrategy solver(params_);
  result.report = solver.recode_via_matching(net, assignment, n, event);

  // Rounds 4-5: commit + ack for every node that changes color (n's own
  // change is local and free).
  bool any_remote = false;
  for (const auto& change : result.report.changes) {
    if (change.node == n) continue;
    any_remote = true;
    Message commit{n, change.node, MessageType::kCommit, 1,
                   unicast_hops(net, n, change.node)};
    Message ack{change.node, n, MessageType::kCommitAck, 0,
                unicast_hops(net, change.node, n)};
    result.cost.add(commit);
    result.cost.add(ack);
    result.log.push_back(commit);
    result.log.push_back(ack);
  }
  if (any_remote) result.cost.rounds += 2;
  result.report.messages = result.cost.messages;
  return result;
}

DistributedResult DistributedMinim::join(const net::AdhocNetwork& net,
                                         net::CodeAssignment& assignment,
                                         net::NodeId n) const {
  return run_matching_protocol(net, assignment, n, core::EventType::kJoin);
}

DistributedResult DistributedMinim::move(const net::AdhocNetwork& net,
                                         net::CodeAssignment& assignment,
                                         net::NodeId n) const {
  return run_matching_protocol(net, assignment, n, core::EventType::kMove);
}

DistributedResult DistributedMinim::power_increase(const net::AdhocNetwork& net,
                                                   net::CodeAssignment& assignment,
                                                   net::NodeId n,
                                                   double old_range) const {
  DistributedResult result;

  // n's new receivers identify themselves (they hear n now); each also
  // relays the senders it already hears — exactly the CA2 constraints of
  // RecodeOnPowIncrease step 1.
  const util::Vec2 pn = net.config(n).position;
  const double old_r2 = old_range * old_range;
  for (net::NodeId u : net.hearers_of(n)) {
    if (util::distance_squared(pn, net.config(u).position) <= old_r2) continue;
    Message m{u, n, MessageType::kConstraintReply, net.heard_by(u).size() + 1,
              unicast_hops(net, u, n)};
    result.cost.add(m);
    result.log.push_back(m);
  }
  result.cost.rounds = 1;

  core::MinimStrategy solver(params_);
  result.report = solver.on_power_change(net, assignment, n, old_range);
  result.report.messages = result.cost.messages;
  return result;
}

}  // namespace minim::proto
