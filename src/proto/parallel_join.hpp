#pragma once

#include <vector>

#include "core/minim.hpp"
#include "net/assignment.hpp"
#include "net/network.hpp"

/// \file parallel_join.hpp
/// \brief Concurrent joins per Theorem 4.1.10.
///
/// The paper relaxes the "one event at a time" assumption: simultaneous
/// joins are safe when the joining nodes are at least 5 hops apart, because
/// their recoding sets (V1 = in-neighbors ∪ self) and the constraint sources
/// those sets read (nodes within 2 further hops) cannot overlap.
///
/// `apply_parallel_joins` models true concurrency: all joiners are inserted
/// into the network, every joiner computes its RecodeOnJoin against the
/// *pre-event* assignment snapshot (nobody sees anybody else's commits), and
/// all commits are applied afterwards.  The caller can then check validity:
/// guaranteed when `min_pairwise_hop_distance >= 5`, and tests exhibit a
/// violation below the threshold.

namespace minim::proto {

struct ParallelJoinOutcome {
  std::vector<net::NodeId> joined;                 ///< ids, in input order
  std::vector<core::RecodeReport> reports;         ///< per joiner
  std::size_t min_pairwise_hop_distance = 0;       ///< over joiner pairs; SIZE_MAX if single
  bool overlapping_writes = false;                 ///< two joiners recoded the same node
};

/// Inserts `configs` into `net` and performs all joins concurrently as
/// described above, committing into `assignment`.
ParallelJoinOutcome apply_parallel_joins(net::AdhocNetwork& net,
                                         net::CodeAssignment& assignment,
                                         const std::vector<net::NodeConfig>& configs,
                                         const core::MinimStrategy::Params& params = {});

}  // namespace minim::proto
