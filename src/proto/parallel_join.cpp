#include "proto/parallel_join.hpp"

#include <algorithm>
#include <limits>

#include "graph/algorithms.hpp"

namespace minim::proto {

ParallelJoinOutcome apply_parallel_joins(net::AdhocNetwork& net,
                                         net::CodeAssignment& assignment,
                                         const std::vector<net::NodeConfig>& configs,
                                         const core::MinimStrategy::Params& params) {
  ParallelJoinOutcome outcome;

  // All joiners appear in the network "at the same instant".
  for (const auto& config : configs) outcome.joined.push_back(net.add_node(config));

  outcome.min_pairwise_hop_distance = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < outcome.joined.size(); ++i)
    for (std::size_t j = i + 1; j < outcome.joined.size(); ++j)
      outcome.min_pairwise_hop_distance =
          std::min(outcome.min_pairwise_hop_distance,
                   graph::hop_distance(net.graph(), outcome.joined[i], outcome.joined[j]));

  // Each joiner computes against the pre-event snapshot: scratch copies of
  // the assignment see no other joiner's commits.
  core::MinimStrategy solver(params);
  const net::CodeAssignment snapshot = assignment;
  std::vector<net::CodeAssignment> scratch(outcome.joined.size(), snapshot);
  for (std::size_t i = 0; i < outcome.joined.size(); ++i)
    outcome.reports.push_back(
        solver.recode_via_matching(net, scratch[i], outcome.joined[i],
                                   core::EventType::kJoin));

  // Commit phase: apply every joiner's changes to the shared assignment.
  std::vector<net::NodeId> written;
  for (const auto& report : outcome.reports) {
    for (const auto& change : report.changes) {
      if (std::find(written.begin(), written.end(), change.node) != written.end())
        outcome.overlapping_writes = true;
      written.push_back(change.node);
      assignment.set_color(change.node, change.new_color);
    }
  }
  return outcome;
}

}  // namespace minim::proto
