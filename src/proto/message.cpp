#include "proto/message.hpp"

#include <sstream>

namespace minim::proto {

const char* to_string(MessageType type) {
  switch (type) {
    case MessageType::kBeacon: return "beacon";
    case MessageType::kConstraintQuery: return "constraint-query";
    case MessageType::kConstraintReply: return "constraint-reply";
    case MessageType::kCommit: return "commit";
    case MessageType::kCommitAck: return "commit-ack";
  }
  return "?";
}

std::string Message::to_string() const {
  std::ostringstream os;
  os << minim::proto::to_string(type) << " " << from << "->" << to << " ("
     << payload_items << " items, " << hops << " hops)";
  return os.str();
}

}  // namespace minim::proto
