#pragma once

#include <vector>

#include "core/minim.hpp"
#include "core/recode_report.hpp"
#include "net/assignment.hpp"
#include "net/network.hpp"
#include "proto/message.hpp"

/// \file distributed_minim.hpp
/// \brief Message-level execution of RecodeOnJoin / RecodeOnMove.
///
/// The recoding is "locally centralized" at the event node n (paper,
/// Section 4.1): n gathers its from-neighbors' constraints, solves the
/// matching locally, and dissipates the new colors.  This class executes
/// exactly those steps with explicit messages and records their cost, while
/// producing — by construction and verified by tests — the *same* assignment
/// the centralized `MinimStrategy` computes.
///
/// Round structure (synchronous model):
///   round 1: beacons — n learns 1n ∪ 2n (its from-neighbors);
///   round 2: n unicasts a constraint query to each from-neighbor;
///   round 3: each from-neighbor replies with its old color + constraints;
///   (local)  n builds G', runs the matching (steps 3-5);
///   round 4: n unicasts commits to every node whose color changes;
///   round 5: commit acks; everyone switches at the agreed instant.
///
/// Query/reply/commit unicasts are charged their undirected shortest-path
/// hop cost, because a from-neighbor u of n need not be reachable in one hop
/// (u -> n does not imply n -> u under asymmetric power).

namespace minim::proto {

struct DistributedResult {
  core::RecodeReport report;     ///< identical content to the centralized run
  ProtocolCost cost;
  std::vector<Message> log;      ///< full message trace (tests/examples)
};

class DistributedMinim {
 public:
  explicit DistributedMinim(core::MinimStrategy::Params params = {})
      : params_(params) {}

  /// Executes the join protocol for `n` (already inserted, uncolored).
  DistributedResult join(const net::AdhocNetwork& net, net::CodeAssignment& assignment,
                         net::NodeId n) const;

  /// Executes the move protocol for `n` (already moved; keeps old color).
  DistributedResult move(const net::AdhocNetwork& net, net::CodeAssignment& assignment,
                         net::NodeId n) const;

  /// Power increase: n checks its own new constraints (gathered via
  /// query/reply with the affected receivers' senders) and recodes itself.
  DistributedResult power_increase(const net::AdhocNetwork& net,
                                   net::CodeAssignment& assignment, net::NodeId n,
                                   double old_range) const;

 private:
  DistributedResult run_matching_protocol(const net::AdhocNetwork& net,
                                           net::CodeAssignment& assignment,
                                           net::NodeId n, core::EventType event) const;

  core::MinimStrategy::Params params_;
};

}  // namespace minim::proto
