#pragma once

#include "core/recode_report.hpp"
#include "net/assignment.hpp"
#include "net/network.hpp"
#include "proto/message.hpp"
#include "strategies/cp.hpp"

/// \file distributed_cp.hpp
/// \brief Message accounting for the CP baseline's distributed execution.
///
/// CP is peer-coordinated rather than locally centralized: on a join, the
/// new node and every duplicate-colored 1-hop neighbor deselect and then
/// re-select colors in identity order, each needing (a) the current colors
/// of its 2-hop vicinity and (b) per elimination round, the pending/served
/// state of the other candidates in its vicinity.  That costs messages
/// proportional to *candidates x vicinity x rounds*, versus Minim's
/// *one* coordinator exchanging with its in-neighbors — the asymmetry the
/// `protocol_overhead` bench quantifies.
///
/// Cost model (per join/move):
///   * beacons: one per in-neighbor of the event node (how it learns 1n∪2n);
///   * vicinity snapshot: each candidate queries its 2-hop ball once —
///     replies are relayed, so each costs up to 2 hops;
///   * coordination: each elimination round, every still-pending candidate
///     announces its state to its vicinity via a 1-hop broadcast relayed by
///     its direct neighbors (1 + degree transmissions, counted as one
///     message with that hop weight);
///   * commit: every candidate announces its chosen color the same way.
/// The color computation itself delegates to `strategies::CpStrategy`, so
/// the distributed run is exactly the proven algorithm plus accounting.

namespace minim::proto {

struct DistributedCpResult {
  core::RecodeReport report;
  ProtocolCost cost;
};

class DistributedCp {
 public:
  explicit DistributedCp(
      strategies::CpStrategy::Order order = strategies::CpStrategy::Order::kHighestFirst,
      strategies::CpStrategy::Vicinity vicinity =
          strategies::CpStrategy::Vicinity::kTwoHopBall)
      : order_(order), vicinity_(vicinity) {}

  DistributedCpResult join(const net::AdhocNetwork& net,
                           net::CodeAssignment& assignment, net::NodeId n) const;

  DistributedCpResult move(const net::AdhocNetwork& net,
                           net::CodeAssignment& assignment, net::NodeId n) const;

  DistributedCpResult power_increase(const net::AdhocNetwork& net,
                                     net::CodeAssignment& assignment, net::NodeId n,
                                     double old_range) const;

 private:
  DistributedCpResult run(const net::AdhocNetwork& net, net::CodeAssignment& assignment,
                          net::NodeId n, core::EventType event,
                          double old_range) const;

  strategies::CpStrategy::Order order_;
  strategies::CpStrategy::Vicinity vicinity_;
};

}  // namespace minim::proto
