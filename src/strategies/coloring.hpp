#pragma once

#include <vector>

#include "net/assignment.hpp"
#include "net/network.hpp"

/// \file coloring.hpp
/// \brief Global conflict-graph coloring heuristics (the BBB substrate).
///
/// The TOCA problem is vertex coloring of the *conflict graph*: nodes are
/// adjacent iff CA1 or CA2 forbids them the same color.  Optimal coloring is
/// NP-complete [Bertossi-Bonuccelli 1995], so the paper's global baseline
/// (BBB, from Battiti-Bertossi-Bonuccelli 1999) is a sequential greedy
/// heuristic.  The original code was never released; we provide the standard
/// ordering family — smallest-last (degeneracy), DSATUR, largest-first and
/// identity — with smallest-last as the default "near-optimal" stand-in, and
/// expose the choice as an ablation.

namespace minim::strategies {

/// Vertex orderings for sequential greedy coloring.
enum class ColoringOrder {
  kSmallestLast,  ///< degeneracy order; classic near-optimal default
  kDSatur,        ///< Brelaz's saturation-degree-first [9]
  kLargestFirst,  ///< descending conflict degree
  kIdentity,      ///< ascending node id (worst-case baseline)
};

const char* to_string(ColoringOrder order);

/// Conflict-graph adjacency for all live nodes: `adj[v]` lists every node
/// that may not share v's color, ascending.  Indexed by node id.
std::vector<std::vector<net::NodeId>> conflict_adjacency(const net::AdhocNetwork& net);

/// Colors the whole network from scratch with sequential greedy coloring in
/// the given order, writing into `out` (existing colors ignored/overwritten).
/// Returns the number of colors used.
net::Color color_network(const net::AdhocNetwork& net, ColoringOrder order,
                         net::CodeAssignment& out);

/// Greedy-colors exactly `vertices` (in the order produced for `order`),
/// holding all other nodes' colors in `assignment` fixed.  Used by tests.
net::Color greedy_color_subset(const net::AdhocNetwork& net,
                               const std::vector<net::NodeId>& vertices,
                               ColoringOrder order, net::CodeAssignment& assignment);

}  // namespace minim::strategies
