#pragma once

#include <cstdint>
#include <vector>

#include "net/assignment.hpp"
#include "net/network.hpp"

/// \file coloring.hpp
/// \brief Global conflict-graph coloring heuristics (the BBB substrate).
///
/// The TOCA problem is vertex coloring of the *conflict graph*: nodes are
/// adjacent iff CA1 or CA2 forbids them the same color.  Optimal coloring is
/// NP-complete [Bertossi-Bonuccelli 1995], so the paper's global baseline
/// (BBB, from Battiti-Bertossi-Bonuccelli 1999) is a sequential greedy
/// heuristic.  The original code was never released; we provide the standard
/// ordering family — smallest-last (degeneracy), DSATUR, largest-first and
/// identity — with smallest-last as the default "near-optimal" stand-in, and
/// expose the choice as an ablation.
///
/// All loops read the network's cached `net::ConflictGraph` rows directly
/// (no per-node partner enumeration) and compute each node's lowest free
/// color with a reusable occupancy bitmap, so coloring an event is
/// allocation-free per node — O(V + E) on the conflict graph.

namespace minim::strategies {

/// Vertex orderings for sequential greedy coloring.
enum class ColoringOrder {
  kSmallestLast,  ///< degeneracy order; classic near-optimal default
  kDSatur,        ///< Brelaz's saturation-degree-first [9]
  kLargestFirst,  ///< descending conflict degree
  kIdentity,      ///< ascending node id (worst-case baseline)
};

const char* to_string(ColoringOrder order);

/// Reusable color-occupancy bitmap: mark the colors of a node's colored
/// conflict neighbors, read the saturation / lowest free color, unmark.
/// Replaces the per-node collect-sort-unique pattern — no allocation after
/// warmup, O(deg) per node.  Shared by the greedy/DSATUR loops and BBB's
/// dirty-region recoloring, which must stay bit-identical to them.
class ColorScratch {
 public:
  void mark(net::Color c) {
    if (c >= marks_.size()) marks_.resize(c + 1, 0);
    if (!marks_[c]) {
      marks_[c] = 1;
      marked_.push_back(c);
    }
  }

  /// Number of distinct colors marked (DSATUR's saturation degree).
  std::size_t saturation() const { return marked_.size(); }

  /// Smallest positive color not marked.
  net::Color lowest_free() const {
    net::Color candidate = 1;
    while (candidate < marks_.size() && marks_[candidate]) ++candidate;
    return candidate;
  }

  void reset() {
    for (net::Color c : marked_) marks_[c] = 0;
    marked_.clear();
  }

 private:
  std::vector<std::uint8_t> marks_;  // indexed by color
  std::vector<net::Color> marked_;   // undo list
};

/// Conflict-graph adjacency for all live nodes: `adj[v]` lists every node
/// that may not share v's color, ascending.  Indexed by node id.  A copy of
/// the network's cached conflict graph — prefer reading
/// `net.conflict_graph()` directly in hot paths.
std::vector<std::vector<net::NodeId>> conflict_adjacency(const net::AdhocNetwork& net);

/// The vertex sequence `greedy_color_subset` colors for `order`.  DSATUR
/// interleaves ordering with coloring and has no precomputable sequence;
/// for it this returns `vertices` unchanged.
std::vector<net::NodeId> coloring_sequence(const net::AdhocNetwork& net,
                                           std::vector<net::NodeId> vertices,
                                           ColoringOrder order);

/// Greedy-colors exactly `sequence`, in that order, against the cached
/// conflict adjacency; every node takes the lowest color not used by an
/// already-colored conflict neighbor.  Colors of nodes outside `sequence`
/// are held fixed.  Returns the highest color assigned to the sequence.
net::Color greedy_color_in_sequence(const net::AdhocNetwork& net,
                                    const std::vector<net::NodeId>& sequence,
                                    net::CodeAssignment& assignment);

/// Colors the whole network from scratch with sequential greedy coloring in
/// the given order, writing into `out` (existing colors ignored/overwritten).
/// Returns the number of colors used.
net::Color color_network(const net::AdhocNetwork& net, ColoringOrder order,
                         net::CodeAssignment& out);

/// Greedy-colors exactly `vertices` (in the order produced for `order`),
/// holding all other nodes' colors in `assignment` fixed.  Used by tests.
net::Color greedy_color_subset(const net::AdhocNetwork& net,
                               const std::vector<net::NodeId>& vertices,
                               ColoringOrder order, net::CodeAssignment& assignment);

}  // namespace minim::strategies
