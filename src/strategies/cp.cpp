#include "strategies/cp.hpp"

#include <algorithm>
#include <map>

#include "graph/algorithms.hpp"
#include "net/constraints.hpp"
#include "util/geometry.hpp"
#include "util/require.hpp"

namespace minim::strategies {

std::string CpStrategy::name() const {
  std::string name = order_ == Order::kHighestFirst ? "CP" : "CP/lowest-first";
  if (vicinity_ == Vicinity::kExactConstraints) name += "/exact";
  return name;
}

std::vector<net::NodeId> CpStrategy::duplicate_color_neighbors(
    const net::AdhocNetwork& net, const net::CodeAssignment& assignment,
    net::NodeId n) {
  std::map<net::Color, std::vector<net::NodeId>> by_color;
  for (net::NodeId u : net.heard_by(n)) {
    const net::Color c = assignment.color(u);
    if (c != net::kNoColor) by_color[c].push_back(u);
  }
  std::vector<net::NodeId> duplicates;
  for (auto& [color, members] : by_color)
    if (members.size() > 1)
      duplicates.insert(duplicates.end(), members.begin(), members.end());
  std::sort(duplicates.begin(), duplicates.end());
  return duplicates;
}

core::RecodeReport CpStrategy::recolor_candidates(const net::AdhocNetwork& net,
                                                  net::CodeAssignment& assignment,
                                                  std::vector<net::NodeId> candidates,
                                                  net::NodeId subject,
                                                  core::EventType event) const {
  core::RecodeReport report;
  report.event = event;
  report.subject = subject;

  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());

  // Deselect: candidates give up their colors before re-selection.
  std::vector<net::Color> saved_old(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    saved_old[i] = assignment.color(candidates[i]);
    assignment.clear(candidates[i]);
  }

  // Vicinity = self + nodes within 2 undirected hops (CP's notion, which
  // over-approximates the real constraint set).
  std::vector<std::vector<net::NodeId>> vicinity(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i)
    vicinity[i] = graph::k_hop_ball(net.graph(), candidates[i], 2);

  if (stats_ != nullptr) {
    *stats_ = RunStats{};
    stats_->candidates = candidates;
    for (const auto& ball : vicinity) stats_->vicinity_sizes.push_back(ball.size());
  }

  auto candidate_index = [&candidates](net::NodeId v) -> std::size_t {
    const auto it = std::lower_bound(candidates.begin(), candidates.end(), v);
    if (it == candidates.end() || *it != v) return candidates.size();
    return static_cast<std::size_t>(it - candidates.begin());
  };

  std::vector<char> colored(candidates.size(), 0);
  std::size_t remaining = candidates.size();
  std::vector<net::Color> forbidden;
  while (remaining > 0) {
    if (stats_ != nullptr) {
      ++stats_->rounds;
      stats_->pending_per_round.push_back(remaining);
    }
    // A candidate selects when it is the extreme-identity uncolored
    // candidate within its own vicinity.  All simultaneously-eligible
    // candidates are pairwise > 2 hops apart, so their choices commute; we
    // process them in deterministic identity order.
    bool progressed = false;
    for (std::size_t step = 0; step < candidates.size(); ++step) {
      const std::size_t i =
          order_ == Order::kHighestFirst ? candidates.size() - 1 - step : step;
      if (colored[i]) continue;
      const net::NodeId u = candidates[i];
      bool blocked = false;
      for (net::NodeId w : vicinity[i]) {
        const std::size_t j = candidate_index(w);
        if (j == candidates.size() || colored[j]) continue;
        if (order_ == Order::kHighestFirst ? w > u : w < u) {
          blocked = true;
          break;
        }
      }
      if (blocked) continue;

      forbidden.clear();
      if (vicinity_ == Vicinity::kTwoHopBall) {
        for (net::NodeId w : vicinity[i]) {
          const net::Color c = assignment.color(w);
          if (c != net::kNoColor) forbidden.push_back(c);
        }
      } else {
        // Exact variant: avoid only true CA1/CA2 conflict partners (pending
        // candidates are uncolored and contribute nothing yet).
        for (net::NodeId w : net.conflict_graph().neighbors(u)) {
          const net::Color c = assignment.color(w);
          if (c != net::kNoColor) forbidden.push_back(c);
        }
      }
      std::sort(forbidden.begin(), forbidden.end());
      forbidden.erase(std::unique(forbidden.begin(), forbidden.end()), forbidden.end());
      assignment.set_color(u, net::lowest_free_color(forbidden));
      colored[i] = 1;
      --remaining;
      progressed = true;
    }
    // The globally extreme uncolored candidate is always eligible.
    MINIM_REQUIRE(progressed, "CP recoloring failed to make progress");
  }

  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const net::Color fresh = assignment.color(candidates[i]);
    if (fresh != saved_old[i])
      report.changes.push_back(core::Recode{candidates[i], saved_old[i], fresh});
  }
  finalize_report(net, assignment, report);
  return report;
}

core::RecodeReport CpStrategy::on_join(const net::AdhocNetwork& net,
                                       net::CodeAssignment& assignment, net::NodeId n) {
  std::vector<net::NodeId> candidates = duplicate_color_neighbors(net, assignment, n);
  candidates.push_back(n);
  return recolor_candidates(net, assignment, std::move(candidates), n,
                            core::EventType::kJoin);
}

core::RecodeReport CpStrategy::on_leave(const net::AdhocNetwork& net,
                                        net::CodeAssignment& assignment,
                                        net::NodeId departed) {
  // CP's leave strategy: neighbors only update constraint bookkeeping.
  core::RecodeReport report;
  report.event = core::EventType::kLeave;
  report.subject = departed;
  finalize_report(net, assignment, report);
  return report;
}

core::RecodeReport CpStrategy::on_move(const net::AdhocNetwork& net,
                                       net::CodeAssignment& assignment, net::NodeId n) {
  // Leave (no recoding) followed by a join at the new position; the mover
  // deselects its color and re-selects like a new node.  Counting compares
  // against its pre-move color, so re-selecting it counts as zero.
  std::vector<net::NodeId> candidates = duplicate_color_neighbors(net, assignment, n);
  candidates.push_back(n);
  return recolor_candidates(net, assignment, std::move(candidates), n,
                            core::EventType::kMove);
}

core::RecodeReport CpStrategy::on_power_change(const net::AdhocNetwork& net,
                                               net::CodeAssignment& assignment,
                                               net::NodeId n, double old_range) {
  const double new_range = net.config(n).range;
  if (new_range <= old_range) {
    core::RecodeReport report;
    report.event = core::EventType::kPowerDecrease;
    report.subject = n;
    finalize_report(net, assignment, report);
    return report;
  }

  // New constraints all involve n: its new out-neighbors (CA1) and their
  // other in-neighbors (CA2).  Candidates are those holding n's color.
  const net::Color cn = assignment.color(n);
  const util::Vec2 pn = net.config(n).position;
  const double old_r2 = old_range * old_range;
  std::vector<net::NodeId> conflicted;
  for (net::NodeId u : net.hearers_of(n)) {
    const bool is_new =
        util::distance_squared(pn, net.config(u).position) > old_r2;
    if (!is_new) continue;
    if (assignment.color(u) == cn) conflicted.push_back(u);
    for (net::NodeId w : net.heard_by(u)) {
      if (w == n) continue;
      if (assignment.color(w) == cn) conflicted.push_back(w);
    }
  }
  std::sort(conflicted.begin(), conflicted.end());
  conflicted.erase(std::unique(conflicted.begin(), conflicted.end()), conflicted.end());

  if (conflicted.empty()) {
    // No conflicts: the old assignment is still valid; CP does nothing.
    core::RecodeReport report;
    report.event = core::EventType::kPowerIncrease;
    report.subject = n;
    finalize_report(net, assignment, report);
    return report;
  }
  conflicted.push_back(n);
  return recolor_candidates(net, assignment, std::move(conflicted), n,
                            core::EventType::kPowerIncrease);
}

}  // namespace minim::strategies
