#include "strategies/cp.hpp"

#include <algorithm>

#include "net/constraints.hpp"
#include "util/geometry.hpp"
#include "util/require.hpp"

namespace minim::strategies {

std::string CpStrategy::name() const {
  std::string name = order_ == Order::kHighestFirst ? "CP" : "CP/lowest-first";
  if (vicinity_ == Vicinity::kExactConstraints) name += "/exact";
  return name;
}

std::vector<net::NodeId> CpStrategy::duplicate_color_neighbors(
    const net::AdhocNetwork& net, const net::CodeAssignment& assignment,
    net::NodeId n) {
  // Group the colored in-neighbors by color without a map: sort (color, id)
  // pairs, emit every color class of size > 1.
  color_pairs_.clear();
  for (net::NodeId u : net.heard_by(n)) {
    const net::Color c = assignment.color(u);
    if (c != net::kNoColor) color_pairs_.emplace_back(c, u);
  }
  std::sort(color_pairs_.begin(), color_pairs_.end());
  std::vector<net::NodeId> duplicates;
  for (std::size_t i = 0; i < color_pairs_.size();) {
    std::size_t j = i + 1;
    while (j < color_pairs_.size() && color_pairs_[j].first == color_pairs_[i].first)
      ++j;
    if (j - i > 1)
      for (std::size_t k = i; k < j; ++k) duplicates.push_back(color_pairs_[k].second);
    i = j;
  }
  std::sort(duplicates.begin(), duplicates.end());
  return duplicates;
}

std::pair<std::uint32_t, std::uint32_t> CpStrategy::collect_two_hop(
    const net::AdhocNetwork& net, net::NodeId v) {
  const std::size_t bound = net.id_bound();
  if (visit_epoch_.size() < bound) visit_epoch_.resize(bound, 0);
  if (++epoch_ == 0) {  // stamp wraparound: reset once every 2^32 queries
    std::fill(visit_epoch_.begin(), visit_epoch_.end(), 0);
    epoch_ = 1;
  }
  const std::uint32_t stamp = epoch_;
  visit_epoch_[v] = stamp;

  const auto offset = static_cast<std::uint32_t>(vicinity_pool_.size());
  auto push_unvisited = [&](net::NodeId w) {
    if (visit_epoch_[w] == stamp) return;
    visit_epoch_[w] = stamp;
    vicinity_pool_.push_back(w);
  };
  for (net::NodeId w : net.hearers_of(v)) push_unvisited(w);
  for (net::NodeId w : net.heard_by(v)) push_unvisited(w);
  const std::size_t level1_end = vicinity_pool_.size();
  for (std::size_t i = offset; i < level1_end; ++i) {
    const net::NodeId x = vicinity_pool_[i];
    for (net::NodeId w : net.hearers_of(x)) push_unvisited(w);
    for (net::NodeId w : net.heard_by(x)) push_unvisited(w);
  }
  return {offset, static_cast<std::uint32_t>(vicinity_pool_.size()) - offset};
}

core::RecodeReport CpStrategy::recolor_candidates(const net::AdhocNetwork& net,
                                                  net::CodeAssignment& assignment,
                                                  std::vector<net::NodeId> candidates,
                                                  net::NodeId subject,
                                                  core::EventType event) {
  core::RecodeReport report;
  report.event = event;
  report.subject = subject;

  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());

  // Deselect: candidates give up their colors before re-selection.
  saved_old_.resize(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    saved_old_[i] = assignment.color(candidates[i]);
    assignment.clear(candidates[i]);
  }

  // Vicinity = the nodes within 2 undirected hops of the candidate (CP's
  // notion, which over-approximates the real constraint set; the candidate
  // itself is excluded, as `graph::k_hop_ball` always did), collected once
  // per candidate into the shared pool.
  vicinity_pool_.clear();
  vicinity_spans_.resize(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i)
    vicinity_spans_[i] = collect_two_hop(net, candidates[i]);
  const auto vicinity = [this](std::size_t i) {
    return std::span<const net::NodeId>(vicinity_pool_.data() + vicinity_spans_[i].first,
                                        vicinity_spans_[i].second);
  };

  if (stats_ != nullptr) {
    *stats_ = RunStats{};
    stats_->candidates = candidates;
    for (std::size_t i = 0; i < candidates.size(); ++i)
      stats_->vicinity_sizes.push_back(vicinity_spans_[i].second);
  }

  // Direct id -> candidate-index map (index + 1; 0 = not a candidate),
  // filled for this event and wiped candidate-by-candidate afterwards.
  if (candidate_slot_.size() < net.id_bound()) candidate_slot_.resize(net.id_bound(), 0);
  for (std::size_t i = 0; i < candidates.size(); ++i)
    candidate_slot_[candidates[i]] = static_cast<std::uint32_t>(i) + 1;

  colored_.assign(candidates.size(), 0);
  std::size_t remaining = candidates.size();
  while (remaining > 0) {
    if (stats_ != nullptr) {
      ++stats_->rounds;
      stats_->pending_per_round.push_back(remaining);
    }
    // A candidate selects when it is the extreme-identity uncolored
    // candidate within its own vicinity.  All simultaneously-eligible
    // candidates are pairwise > 2 hops apart, so their choices commute; we
    // process them in deterministic identity order.
    bool progressed = false;
    for (std::size_t step = 0; step < candidates.size(); ++step) {
      const std::size_t i =
          order_ == Order::kHighestFirst ? candidates.size() - 1 - step : step;
      if (colored_[i]) continue;
      const net::NodeId u = candidates[i];
      bool blocked = false;
      for (net::NodeId w : vicinity(i)) {
        const std::uint32_t slot = candidate_slot_[w];
        if (slot == 0 || colored_[slot - 1]) continue;
        if (order_ == Order::kHighestFirst ? w > u : w < u) {
          blocked = true;
          break;
        }
      }
      if (blocked) continue;

      forbidden_.clear();
      if (vicinity_ == Vicinity::kTwoHopBall) {
        for (net::NodeId w : vicinity(i)) {
          const net::Color c = assignment.color(w);
          if (c != net::kNoColor) forbidden_.push_back(c);
        }
      } else {
        // Exact variant: avoid only true CA1/CA2 conflict partners (pending
        // candidates are uncolored and contribute nothing yet).
        for (net::NodeId w : net.conflict_graph().neighbors(u)) {
          const net::Color c = assignment.color(w);
          if (c != net::kNoColor) forbidden_.push_back(c);
        }
      }
      std::sort(forbidden_.begin(), forbidden_.end());
      forbidden_.erase(std::unique(forbidden_.begin(), forbidden_.end()),
                       forbidden_.end());
      assignment.set_color(u, net::lowest_free_color(forbidden_));
      colored_[i] = 1;
      --remaining;
      progressed = true;
    }
    // The globally extreme uncolored candidate is always eligible.
    MINIM_REQUIRE(progressed, "CP recoloring failed to make progress");
  }

  for (net::NodeId c : candidates) candidate_slot_[c] = 0;

  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const net::Color fresh = assignment.color(candidates[i]);
    if (fresh != saved_old_[i])
      report.changes.push_back(core::Recode{candidates[i], saved_old_[i], fresh});
  }
  finalize_report(net, assignment, report);
  return report;
}

core::RecodeReport CpStrategy::on_join(const net::AdhocNetwork& net,
                                       net::CodeAssignment& assignment, net::NodeId n) {
  std::vector<net::NodeId> candidates = duplicate_color_neighbors(net, assignment, n);
  candidates.push_back(n);
  return recolor_candidates(net, assignment, std::move(candidates), n,
                            core::EventType::kJoin);
}

core::RecodeReport CpStrategy::on_leave(const net::AdhocNetwork& net,
                                        net::CodeAssignment& assignment,
                                        net::NodeId departed) {
  // CP's leave strategy: neighbors only update constraint bookkeeping.
  core::RecodeReport report;
  report.event = core::EventType::kLeave;
  report.subject = departed;
  finalize_report(net, assignment, report);
  return report;
}

core::RecodeReport CpStrategy::on_move(const net::AdhocNetwork& net,
                                       net::CodeAssignment& assignment, net::NodeId n) {
  // Leave (no recoding) followed by a join at the new position; the mover
  // deselects its color and re-selects like a new node.  Counting compares
  // against its pre-move color, so re-selecting it counts as zero.
  std::vector<net::NodeId> candidates = duplicate_color_neighbors(net, assignment, n);
  candidates.push_back(n);
  return recolor_candidates(net, assignment, std::move(candidates), n,
                            core::EventType::kMove);
}

core::RecodeReport CpStrategy::on_power_change(const net::AdhocNetwork& net,
                                               net::CodeAssignment& assignment,
                                               net::NodeId n, double old_range) {
  const double new_range = net.config(n).range;
  if (new_range <= old_range) {
    core::RecodeReport report;
    report.event = core::EventType::kPowerDecrease;
    report.subject = n;
    finalize_report(net, assignment, report);
    return report;
  }

  // New constraints all involve n: its new out-neighbors (CA1) and their
  // other in-neighbors (CA2).  Candidates are those holding n's color.
  const net::Color cn = assignment.color(n);
  const util::Vec2 pn = net.config(n).position;
  const double old_r2 = old_range * old_range;
  std::vector<net::NodeId> conflicted;
  for (net::NodeId u : net.hearers_of(n)) {
    const bool is_new =
        util::distance_squared(pn, net.config(u).position) > old_r2;
    if (!is_new) continue;
    if (assignment.color(u) == cn) conflicted.push_back(u);
    for (net::NodeId w : net.heard_by(u)) {
      if (w == n) continue;
      if (assignment.color(w) == cn) conflicted.push_back(w);
    }
  }
  std::sort(conflicted.begin(), conflicted.end());
  conflicted.erase(std::unique(conflicted.begin(), conflicted.end()), conflicted.end());

  if (conflicted.empty()) {
    // No conflicts: the old assignment is still valid; CP does nothing.
    core::RecodeReport report;
    report.event = core::EventType::kPowerIncrease;
    report.subject = n;
    finalize_report(net, assignment, report);
    return report;
  }
  conflicted.push_back(n);
  return recolor_candidates(net, assignment, std::move(conflicted), n,
                            core::EventType::kPowerIncrease);
}

}  // namespace minim::strategies
