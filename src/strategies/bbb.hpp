#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/strategy.hpp"
#include "strategies/coloring.hpp"
#include "strategies/components.hpp"
#include "strategies/ordering.hpp"
#include "util/thread_pool.hpp"

/// \file bbb.hpp
/// \brief The BBB global baseline: recolor the whole network at every event.
///
/// The paper evaluates its distributed strategies against "a strategy that
/// uses a centralized coloring heuristic: the BBB algorithm of [7], to
/// recolor the entire network at every event".  BBB is near-optimal in max
/// color index (it ignores history and colors from scratch) but pathological
/// in #recodings, which is exactly the contrast Figures 10-12 show.
///
/// ## Dirty-region recoloring
///
/// Recoloring from scratch per event made BBB dominate every wall-clock
/// profile.  This implementation instead *replays* the from-scratch greedy
/// incrementally: it keeps the previous output (colors + ordering
/// positions), asks the network's cached conflict graph which nodes'
/// conflict neighborhoods changed since, and recomputes a node's color only
/// when its
/// adjacency changed, its relative order with a neighbor flipped, or an
/// earlier-ordered neighbor's color changed — classic change propagation
/// over the greedy's dependency order.  Every kept color provably equals
/// what the from-scratch greedy would assign, so reports and max colors are
/// bit-identical to the full recolor (the equivalence is soaked in
/// tests/strategies/bbb_incremental_test.cpp).  When the dirty set exceeds
/// `Params::full_recolor_fraction` of the network — or the journal window
/// is gone, or the order is DSATUR (whose dynamic ordering has no static
/// dependency structure) — it falls back to the from-scratch path.
///
/// ## Rank-bounded propagation
///
/// Dirty-region recoloring still *walks* the full stored order per event to
/// find the nodes worth recomputing — the last per-event O(n) term.  With
/// `Params::bounded_propagation` the walk disappears: the orderer maintains
/// a persistent rank index (see ordering.hpp), the event's journal-dirty
/// nodes seed a min-heap keyed by rank, and propagation pops ranks in
/// non-decreasing order, recomputing a node's lowest-free color from its
/// earlier-ranked neighbors and pushing only the later-ranked neighbors of
/// nodes whose color actually changed.  The pop order guarantees every
/// earlier-ranked color read is final, so the result is bit-identical to a
/// from-scratch greedy over the *maintained* sequence (the fuzz harness in
/// tests/strategies/bbb_bounded_fuzz_test.cpp holds it to that per event).
/// The maintained sequence itself drifts from true smallest-last between
/// rebuilds; the coloring-quality cost of that drift is an explicit,
/// gated metric — not silent.  Work per event is O(popped ranks · degree),
/// capped at `Params::propagation_slack` × live nodes; exceeding the cap —
/// or any journal/drift fallback — runs the from-scratch path, which
/// reseeds the rank index.
///
/// ## Parallel recoloring (`Params::recolor_threads`)
///
/// A batch's dirty set often spans spatially distant regions whose
/// propagations cannot interact.  With `recolor_threads > 1` the bounded
/// path first decomposes the forward closure of the dirty seeds under
/// rank-increasing conflict edges into connected components
/// (strategies/components.hpp) and recolors each component on its own
/// thread.  Components share no conflict edge inside the closure and edges
/// leaving the closure reach only *earlier-ranked* colors — final for this
/// event, read-only everywhere — so per-component heap propagation writes
/// disjoint id slots of the shared epoch arrays, and the merged, id-sorted
/// change list is bit-identical to the serial pass regardless of thread
/// schedule.  The closure walk is capped at the propagation budget: a
/// closure within the budget proves the serial pass could not have hit its
/// slack bailout either, so threads=N and threads=1 take the *same*
/// absorb/fallback decisions on every event.  Demotion ladder: closure cap
/// exceeded or a single component → the serial heap (this event stays
/// bounded); serial budget/drift/journal refusals → the from-scratch path,
/// exactly as before.  The fuzz harness in
/// tests/strategies/bbb_parallel_fuzz_test.cpp holds parallel ≡ serial to
/// bit-identical colors *and* maintained ranks across batched streams.

namespace minim::strategies {

class BbbStrategy final : public core::RecodingStrategy {
 public:
  /// Recoloring engine knobs; the defaults are the production behavior.
  struct Params {
    /// Dirty-region change propagation (bit-identical to full recolor).
    /// Disable to force the from-scratch path on every event — the
    /// reference the equivalence tests compare against.
    bool incremental = true;
    /// Fall back to a full recolor when more than this fraction of the
    /// live nodes had conflict-neighborhood changes.
    double full_recolor_fraction = 0.5;
    /// Serve the smallest-last ordering from the journal-synced
    /// `DegeneracyOrderer` (bit-identical to from-scratch
    /// `graph::smallest_last_order`).  Disable to recompute the ordering
    /// from an adjacency scan per event — the soak reference.
    bool incremental_order = true;
    /// The orderer's full-degree-rebuild threshold
    /// (`DegeneracyOrderer::Params::rebuild_fraction`).
    double order_rebuild_fraction = 0.25;
    /// Rank-bounded propagation: replace the per-event full-order walk with
    /// a heap over maintained ranks (smallest-last only; see the file
    /// comment).  Bit-identical to a from-scratch greedy over the
    /// maintained sequence; order *quality* may drift between rebuilds.
    bool bounded_propagation = false;
    /// Per-event propagation budget as a fraction of the live node count
    /// (floor 32 processed ranks).  Exceeding it abandons the event to the
    /// from-scratch path — the escape hatch for recolor storms.
    double propagation_slack = 0.25;
    /// The orderer's maintained-rank drift bound
    /// (`DegeneracyOrderer::Params::rank_rebuild_fraction`).
    double rank_rebuild_fraction = 0.25;
    /// Component-parallel bounded recoloring: decompose the batch's dirty
    /// closure into independent components and recolor them concurrently
    /// (see the file comment).  1 = serial (default), 0 = one thread per
    /// hardware core.  Results are bit-identical at every setting.
    std::size_t recolor_threads = 1;
  };

  /// Where bounded-mode events went (all zero unless `bounded_propagation`).
  struct Counters {
    std::uint64_t events = 0;          ///< recolor events served (any mode)
    std::uint64_t bounded_events = 0;  ///< absorbed by rank-bounded propagation
    std::uint64_t full_events = 0;     ///< fell back to the from-scratch path
    std::uint64_t processed_ranks = 0; ///< heap pops across bounded events
    std::uint64_t full_ranks = 0;      ///< live nodes walked by full events
    std::uint64_t slack_bailouts = 0;  ///< budget exceeded mid-propagation
    // Component-parallel mode (zero unless `recolor_threads` resolves > 1).
    std::uint64_t parallel_events = 0;      ///< repairs absorbed component-parallel
    std::uint64_t parallel_components = 0;  ///< components recolored across them
    std::uint64_t parallel_demotions = 0;   ///< attempts demoted to the serial heap
  };

  explicit BbbStrategy(ColoringOrder order = ColoringOrder::kSmallestLast)
      : BbbStrategy(order, Params{}) {}
  BbbStrategy(ColoringOrder order, Params params)
      : order_(order),
        params_(params),
        orderer_(DegeneracyOrderer::Params{params.incremental_order,
                                           params.order_rebuild_fraction,
                                           params.rank_rebuild_fraction}) {}

  std::string name() const override;

  core::RecodeReport on_join(const net::AdhocNetwork& net,
                             net::CodeAssignment& assignment, net::NodeId n) override;
  core::RecodeReport on_leave(const net::AdhocNetwork& net,
                              net::CodeAssignment& assignment,
                              net::NodeId departed) override;
  core::RecodeReport on_move(const net::AdhocNetwork& net,
                             net::CodeAssignment& assignment, net::NodeId n) override;
  core::RecodeReport on_power_change(const net::AdhocNetwork& net,
                                     net::CodeAssignment& assignment, net::NodeId n,
                                     double old_range) override;

  /// Every BBB handler replays the from-scratch greedy over the *current*
  /// network — the final assignment is a pure function of the final graph
  /// (plus, in bounded mode, the maintained sequence, which the batch
  /// absorption maintains exactly as a sequential replay would while all
  /// events absorb).  So one repair over the post-batch network is
  /// equivalent to repairing after every event.
  bool supports_batch() const override { return true; }
  core::RecodeReport on_batch(const net::AdhocNetwork& net,
                              net::CodeAssignment& assignment,
                              const core::BatchRepairContext& context) override;

  ColoringOrder order() const { return order_; }
  const Params& params() const { return params_; }
  const Counters& counters() const { return counters_; }
  /// The maintained-order engine (repair/fallback counters for tests; the
  /// maintained rank sequence for the bounded-mode fuzz oracle).
  const DegeneracyOrderer& orderer() const { return orderer_; }

  /// Re-targets `Params::recolor_threads` on a live strategy (the serving
  /// layer's tuning hook).  Takes effect from the next event; the worker
  /// pool is rebuilt lazily at the new size.
  void set_recolor_threads(std::size_t threads) {
    params_.recolor_threads = threads;
    pool_.reset();
  }

 private:
  static constexpr std::uint32_t kNoPos = static_cast<std::uint32_t>(-1);

  /// The coloring sequence of this event, served from the maintained
  /// orderer for smallest-last (when enabled) and from
  /// `coloring_sequence` otherwise.  Returns a reference to `seq_`.
  const std::vector<net::NodeId>& sequence_for(const net::AdhocNetwork& net,
                                               const std::vector<net::NodeId>& nodes);

  /// Shared recolor driver.  `batch_events` > 1 and the joiner/reborn spans
  /// are only set on the batched path (`on_batch`): the propagation budget
  /// scales with the number of coalesced events, rank maintenance receives
  /// the batch's join order, and the bounded path skips its rank
  /// precondition for ids whose rank the maintenance itself creates.
  core::RecodeReport global_recolor(const net::AdhocNetwork& net,
                                    net::CodeAssignment& assignment,
                                    core::EventType event, net::NodeId subject,
                                    std::size_t batch_events = 1,
                                    std::span<const net::NodeId> joiners = {},
                                    std::span<const net::NodeId> reborn = {});

  /// The dirty-region path.  Returns false — without touching `assignment`
  /// — when the cached state cannot prove equivalence (unknown network,
  /// trimmed journal, externally mutated assignment, dirty set too large);
  /// the caller then runs the from-scratch path.
  bool incremental_recolor(const net::AdhocNetwork& net,
                           net::CodeAssignment& assignment,
                           const std::vector<net::NodeId>& nodes,
                           core::RecodeReport& report);

  /// One propagation frontier's working state: the min-rank heap, the nodes
  /// whose color changed, the free-color scratch, and the pop count.  The
  /// serial path owns one (`frontier_`); the parallel path one per
  /// component (`comp_frontiers_`) so threads never share heap state.
  struct Frontier {
    std::vector<std::pair<std::uint32_t, net::NodeId>> heap;  ///< (rank, id)
    std::vector<net::NodeId> changed;
    ColorScratch scratch;
    std::size_t processed = 0;
  };

  /// Heap propagation from `seeds` over the maintained ranks, writing event
  /// colors into the shared epoch-stamped overlays.  Returns false when the
  /// pop count would exceed `budget` (frontier state then reflects exactly
  /// `budget` completed pops; the overlays carry partial writes the caller
  /// must treat as abandoned).  Thread-safe across *disjoint components*:
  /// all shared writes land at the frontier's own member ids.
  bool propagate(const net::ConflictGraph& cg, std::span<const net::NodeId> seeds,
                 std::size_t budget, Frontier& frontier);

  /// The component-parallel bounded pass: decompose `live_dirty_`'s forward
  /// closure (cap = `budget`), recolor each component on the pool, merge
  /// change lists into `changed_list_` and pop counts into `processed`.
  /// Returns false — demoting to the serial heap — when the closure exceeds
  /// the budget or yields fewer than two components.
  bool parallel_propagate(const net::ConflictGraph& cg, std::size_t budget,
                          std::size_t& processed);

  /// `Params::recolor_threads` with 0 resolved to the hardware core count.
  std::size_t resolved_recolor_threads() const;
  /// Lazily builds the worker pool sized for `resolved_recolor_threads()`
  /// (the caller participates in `parallel_for`, so N-way concurrency needs
  /// N-1 workers).
  void ensure_pool();

  /// The rank-bounded path (`Params::bounded_propagation`).  Returns false
  /// — without touching `assignment` — when the event can't be absorbed
  /// (unknown network, trimmed journal, mutated assignment, dirty set or
  /// propagation budget exceeded, rank drift demanding a rebuild); the
  /// caller then runs the from-scratch path, which reseeds the rank index.
  /// Never touches the full node set: per-event work is O(dirty + popped
  /// ranks · degree).
  bool bounded_recolor(const net::AdhocNetwork& net,
                       net::CodeAssignment& assignment,
                       core::RecodeReport& report, std::size_t batch_events,
                       std::span<const net::NodeId> joiners,
                       std::span<const net::NodeId> reborn);

  /// This event's working color of `v`: the propagation result when `v` was
  /// recomputed this event, the snapshot color otherwise.
  net::Color event_color(net::NodeId v) const {
    return v < event_color_epoch_.size() && event_color_epoch_[v] == epoch_
               ? event_colors_[v]
               : snapshot_color(v);
  }

  /// Records this event's output (colors + ordering positions + journal
  /// revision) as the base of the next event's change propagation.
  void snapshot(const net::AdhocNetwork& net,
                const std::vector<net::NodeId>& sequence,
                const net::CodeAssignment& assignment);

  net::Color snapshot_color(net::NodeId v) const {
    return v < last_colors_.size() ? last_colors_[v] : net::kNoColor;
  }

  ColoringOrder order_;
  Params params_;
  Counters counters_;

  // Previous output (valid when last_net_ != nullptr): id-indexed colors
  // and greedy-order positions, plus the conflict-journal revision they
  // correspond to.
  const net::AdhocNetwork* last_net_ = nullptr;
  std::uint64_t last_revision_ = 0;
  std::vector<net::Color> last_colors_;
  std::vector<std::uint32_t> last_pos_;

  // Per-event scratch (reused across events; no per-node allocation).
  std::vector<net::NodeId> dirty_;
  std::vector<net::NodeId> nodes_;
  std::vector<net::NodeId> seq_;
  std::vector<std::uint32_t> pos_;
  std::vector<net::Color> new_colors_;
  std::vector<std::uint8_t> adj_dirty_;
  std::vector<std::uint8_t> changed_;
  std::vector<net::Color> old_colors_;
  ColorScratch scratch_;
  DegeneracyOrderer orderer_;

  // Rank-bounded propagation scratch.  The epoch stamp makes per-event
  // resets O(1): a slot belongs to this event iff its stamp equals epoch_.
  // During a parallel pass the epoch arrays are shared across component
  // threads, but each thread writes only its own component's id slots (the
  // vectors are pre-sized before the fan-out, so no reallocation races).
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> seen_epoch_;         ///< node processed this event
  std::vector<std::uint32_t> event_color_epoch_;  ///< event_colors_[v] valid
  std::vector<net::Color> event_colors_;
  std::vector<net::NodeId> live_dirty_;   ///< this event's live, ranked seeds
  std::vector<net::NodeId> changed_list_; ///< merged changes, sorted for apply
  Frontier frontier_;                     ///< the serial propagation frontier

  // Component-parallel machinery (idle unless recolor_threads resolves > 1).
  DirtyComponents components_;
  std::vector<Frontier> comp_frontiers_;
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace minim::strategies
