#pragma once

#include <cstdint>
#include <vector>

#include "core/strategy.hpp"
#include "strategies/coloring.hpp"
#include "strategies/ordering.hpp"

/// \file bbb.hpp
/// \brief The BBB global baseline: recolor the whole network at every event.
///
/// The paper evaluates its distributed strategies against "a strategy that
/// uses a centralized coloring heuristic: the BBB algorithm of [7], to
/// recolor the entire network at every event".  BBB is near-optimal in max
/// color index (it ignores history and colors from scratch) but pathological
/// in #recodings, which is exactly the contrast Figures 10-12 show.
///
/// ## Dirty-region recoloring
///
/// Recoloring from scratch per event made BBB dominate every wall-clock
/// profile.  This implementation instead *replays* the from-scratch greedy
/// incrementally: it keeps the previous output (colors + ordering
/// positions), asks the network's cached conflict graph which nodes'
/// conflict neighborhoods changed since, and recomputes a node's color only
/// when its
/// adjacency changed, its relative order with a neighbor flipped, or an
/// earlier-ordered neighbor's color changed — classic change propagation
/// over the greedy's dependency order.  Every kept color provably equals
/// what the from-scratch greedy would assign, so reports and max colors are
/// bit-identical to the full recolor (the equivalence is soaked in
/// tests/strategies/bbb_incremental_test.cpp).  When the dirty set exceeds
/// `Params::full_recolor_fraction` of the network — or the journal window
/// is gone, or the order is DSATUR (whose dynamic ordering has no static
/// dependency structure) — it falls back to the from-scratch path.

namespace minim::strategies {

class BbbStrategy final : public core::RecodingStrategy {
 public:
  /// Recoloring engine knobs; the defaults are the production behavior.
  struct Params {
    /// Dirty-region change propagation (bit-identical to full recolor).
    /// Disable to force the from-scratch path on every event — the
    /// reference the equivalence tests compare against.
    bool incremental = true;
    /// Fall back to a full recolor when more than this fraction of the
    /// live nodes had conflict-neighborhood changes.
    double full_recolor_fraction = 0.5;
    /// Serve the smallest-last ordering from the journal-synced
    /// `DegeneracyOrderer` (bit-identical to from-scratch
    /// `graph::smallest_last_order`).  Disable to recompute the ordering
    /// from an adjacency scan per event — the soak reference.
    bool incremental_order = true;
    /// The orderer's full-degree-rebuild threshold
    /// (`DegeneracyOrderer::Params::rebuild_fraction`).
    double order_rebuild_fraction = 0.25;
  };

  explicit BbbStrategy(ColoringOrder order = ColoringOrder::kSmallestLast)
      : BbbStrategy(order, Params{}) {}
  BbbStrategy(ColoringOrder order, Params params)
      : order_(order),
        params_(params),
        orderer_(DegeneracyOrderer::Params{params.incremental_order,
                                           params.order_rebuild_fraction}) {}

  std::string name() const override;

  core::RecodeReport on_join(const net::AdhocNetwork& net,
                             net::CodeAssignment& assignment, net::NodeId n) override;
  core::RecodeReport on_leave(const net::AdhocNetwork& net,
                              net::CodeAssignment& assignment,
                              net::NodeId departed) override;
  core::RecodeReport on_move(const net::AdhocNetwork& net,
                             net::CodeAssignment& assignment, net::NodeId n) override;
  core::RecodeReport on_power_change(const net::AdhocNetwork& net,
                                     net::CodeAssignment& assignment, net::NodeId n,
                                     double old_range) override;

  ColoringOrder order() const { return order_; }
  const Params& params() const { return params_; }
  /// The maintained-order engine (repair/fallback counters for tests).
  const DegeneracyOrderer& orderer() const { return orderer_; }

 private:
  static constexpr std::uint32_t kNoPos = static_cast<std::uint32_t>(-1);

  /// The coloring sequence of this event, served from the maintained
  /// orderer for smallest-last (when enabled) and from
  /// `coloring_sequence` otherwise.  Returns a reference to `seq_`.
  const std::vector<net::NodeId>& sequence_for(const net::AdhocNetwork& net,
                                               const std::vector<net::NodeId>& nodes);

  core::RecodeReport global_recolor(const net::AdhocNetwork& net,
                                    net::CodeAssignment& assignment,
                                    core::EventType event, net::NodeId subject);

  /// The dirty-region path.  Returns false — without touching `assignment`
  /// — when the cached state cannot prove equivalence (unknown network,
  /// trimmed journal, externally mutated assignment, dirty set too large);
  /// the caller then runs the from-scratch path.
  bool incremental_recolor(const net::AdhocNetwork& net,
                           net::CodeAssignment& assignment,
                           const std::vector<net::NodeId>& nodes,
                           core::RecodeReport& report);

  /// Records this event's output (colors + ordering positions + journal
  /// revision) as the base of the next event's change propagation.
  void snapshot(const net::AdhocNetwork& net,
                const std::vector<net::NodeId>& sequence,
                const net::CodeAssignment& assignment);

  net::Color snapshot_color(net::NodeId v) const {
    return v < last_colors_.size() ? last_colors_[v] : net::kNoColor;
  }

  ColoringOrder order_;
  Params params_;

  // Previous output (valid when last_net_ != nullptr): id-indexed colors
  // and greedy-order positions, plus the conflict-journal revision they
  // correspond to.
  const net::AdhocNetwork* last_net_ = nullptr;
  std::uint64_t last_revision_ = 0;
  std::vector<net::Color> last_colors_;
  std::vector<std::uint32_t> last_pos_;

  // Per-event scratch (reused across events; no per-node allocation).
  std::vector<net::NodeId> dirty_;
  std::vector<net::NodeId> nodes_;
  std::vector<net::NodeId> seq_;
  std::vector<std::uint32_t> pos_;
  std::vector<net::Color> new_colors_;
  std::vector<std::uint8_t> adj_dirty_;
  std::vector<std::uint8_t> changed_;
  std::vector<net::Color> old_colors_;
  ColorScratch scratch_;
  DegeneracyOrderer orderer_;
};

}  // namespace minim::strategies
