#pragma once

#include "core/strategy.hpp"
#include "strategies/coloring.hpp"

/// \file bbb.hpp
/// \brief The BBB global baseline: recolor the whole network at every event.
///
/// The paper evaluates its distributed strategies against "a strategy that
/// uses a centralized coloring heuristic: the BBB algorithm of [7], to
/// recolor the entire network at every event".  BBB is near-optimal in max
/// color index (it ignores history and colors from scratch) but pathological
/// in #recodings, which is exactly the contrast Figures 10-12 show.

namespace minim::strategies {

class BbbStrategy final : public core::RecodingStrategy {
 public:
  explicit BbbStrategy(ColoringOrder order = ColoringOrder::kSmallestLast)
      : order_(order) {}

  std::string name() const override;

  core::RecodeReport on_join(const net::AdhocNetwork& net,
                             net::CodeAssignment& assignment, net::NodeId n) override;
  core::RecodeReport on_leave(const net::AdhocNetwork& net,
                              net::CodeAssignment& assignment,
                              net::NodeId departed) override;
  core::RecodeReport on_move(const net::AdhocNetwork& net,
                             net::CodeAssignment& assignment, net::NodeId n) override;
  core::RecodeReport on_power_change(const net::AdhocNetwork& net,
                                     net::CodeAssignment& assignment, net::NodeId n,
                                     double old_range) override;

  ColoringOrder order() const { return order_; }

 private:
  core::RecodeReport global_recolor(const net::AdhocNetwork& net,
                                    net::CodeAssignment& assignment,
                                    core::EventType event, net::NodeId subject) const;

  ColoringOrder order_;
};

}  // namespace minim::strategies
