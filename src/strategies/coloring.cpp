#include "strategies/coloring.hpp"

#include <algorithm>
#include <limits>

#include "graph/algorithms.hpp"
#include "net/constraints.hpp"

namespace minim::strategies {

const char* to_string(ColoringOrder order) {
  switch (order) {
    case ColoringOrder::kSmallestLast: return "smallest-last";
    case ColoringOrder::kDSatur: return "dsatur";
    case ColoringOrder::kLargestFirst: return "largest-first";
    case ColoringOrder::kIdentity: return "identity";
  }
  return "?";
}

std::vector<std::vector<net::NodeId>> conflict_adjacency(const net::AdhocNetwork& net) {
  std::vector<std::vector<net::NodeId>> adj(net.id_bound());
  for (net::NodeId v : net.nodes()) adj[v] = net::conflict_partners(net, v);
  return adj;
}

namespace {

/// Colors `vertices` in the given sequence; each takes the lowest color not
/// used by an already-colored conflict neighbor.
net::Color greedy_in_sequence(const std::vector<std::vector<net::NodeId>>& adj,
                              const std::vector<net::NodeId>& sequence,
                              net::CodeAssignment& assignment) {
  net::Color used = 0;
  std::vector<net::Color> forbidden;
  for (net::NodeId v : sequence) {
    forbidden.clear();
    for (net::NodeId w : adj[v]) {
      const net::Color c = assignment.color(w);
      if (c != net::kNoColor) forbidden.push_back(c);
    }
    std::sort(forbidden.begin(), forbidden.end());
    forbidden.erase(std::unique(forbidden.begin(), forbidden.end()), forbidden.end());
    const net::Color c = net::lowest_free_color(forbidden);
    assignment.set_color(v, c);
    used = std::max(used, c);
  }
  return used;
}

/// DSATUR needs interleaved ordering and coloring, so it gets its own loop.
net::Color dsatur(const std::vector<std::vector<net::NodeId>>& adj,
                  const std::vector<net::NodeId>& vertices,
                  net::CodeAssignment& assignment) {
  std::vector<char> pending(adj.size(), 0);
  for (net::NodeId v : vertices) pending[v] = 1;

  net::Color used = 0;
  std::vector<net::Color> forbidden;
  for (std::size_t step = 0; step < vertices.size(); ++step) {
    // Pick the pending vertex with maximum saturation (distinct colors among
    // its conflict neighbors), ties by degree then by lowest id.
    net::NodeId best = graph::kInvalidNode;
    std::size_t best_sat = 0;
    std::size_t best_deg = 0;
    for (net::NodeId v : vertices) {
      if (!pending[v]) continue;
      forbidden.clear();
      for (net::NodeId w : adj[v]) {
        const net::Color c = assignment.color(w);
        if (c != net::kNoColor) forbidden.push_back(c);
      }
      std::sort(forbidden.begin(), forbidden.end());
      forbidden.erase(std::unique(forbidden.begin(), forbidden.end()), forbidden.end());
      const std::size_t sat = forbidden.size();
      const std::size_t deg = adj[v].size();
      if (best == graph::kInvalidNode || sat > best_sat ||
          (sat == best_sat && deg > best_deg)) {
        best = v;
        best_sat = sat;
        best_deg = deg;
      }
    }
    forbidden.clear();
    for (net::NodeId w : adj[best]) {
      const net::Color c = assignment.color(w);
      if (c != net::kNoColor) forbidden.push_back(c);
    }
    std::sort(forbidden.begin(), forbidden.end());
    forbidden.erase(std::unique(forbidden.begin(), forbidden.end()), forbidden.end());
    const net::Color c = net::lowest_free_color(forbidden);
    assignment.set_color(best, c);
    used = std::max(used, c);
    pending[best] = 0;
  }
  return used;
}

std::vector<net::NodeId> order_vertices(const std::vector<std::vector<net::NodeId>>& adj,
                                        std::vector<net::NodeId> vertices,
                                        ColoringOrder order) {
  switch (order) {
    case ColoringOrder::kSmallestLast:
      return graph::smallest_last_order(adj, vertices);
    case ColoringOrder::kLargestFirst:
      std::stable_sort(vertices.begin(), vertices.end(),
                       [&adj](net::NodeId a, net::NodeId b) {
                         return adj[a].size() > adj[b].size();
                       });
      return vertices;
    case ColoringOrder::kIdentity:
      std::sort(vertices.begin(), vertices.end());
      return vertices;
    case ColoringOrder::kDSatur:
      return vertices;  // handled by the dedicated loop
  }
  return vertices;
}

}  // namespace

net::Color greedy_color_subset(const net::AdhocNetwork& net,
                               const std::vector<net::NodeId>& vertices,
                               ColoringOrder order, net::CodeAssignment& assignment) {
  const auto adj = conflict_adjacency(net);
  if (order == ColoringOrder::kDSatur) return dsatur(adj, vertices, assignment);
  const auto sequence = order_vertices(adj, vertices, order);
  return greedy_in_sequence(adj, sequence, assignment);
}

net::Color color_network(const net::AdhocNetwork& net, ColoringOrder order,
                         net::CodeAssignment& out) {
  // Start all nodes uncolored so greedy sees a clean slate.
  for (net::NodeId v : net.nodes()) out.clear(v);
  return greedy_color_subset(net, net.nodes(), order, out);
}

}  // namespace minim::strategies
