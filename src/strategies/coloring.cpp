#include "strategies/coloring.hpp"

#include <algorithm>
#include <cstdint>

#include "graph/algorithms.hpp"
#include "net/conflict_graph.hpp"

namespace minim::strategies {

const char* to_string(ColoringOrder order) {
  switch (order) {
    case ColoringOrder::kSmallestLast: return "smallest-last";
    case ColoringOrder::kDSatur: return "dsatur";
    case ColoringOrder::kLargestFirst: return "largest-first";
    case ColoringOrder::kIdentity: return "identity";
  }
  return "?";
}

std::vector<std::vector<net::NodeId>> conflict_adjacency(const net::AdhocNetwork& net) {
  std::vector<std::vector<net::NodeId>> adj(net.id_bound());
  for (net::NodeId v : net.nodes()) {
    const auto row = net.conflict_graph().neighbors(v);
    adj[v].assign(row.begin(), row.end());
  }
  return adj;
}

namespace {

/// Id-indexed adjacency view over the cached conflict graph — the shape
/// `graph::smallest_last_order` and the greedy loops expect, without
/// copying rows.
struct CachedAdjacency {
  const net::ConflictGraph* conflict;
  std::span<const net::NodeId> operator[](net::NodeId v) const {
    return conflict->neighbors(v);
  }
};

/// Marks the colors of v's colored conflict neighbors into `scratch`.
void mark_neighbor_colors(const CachedAdjacency& adj, net::NodeId v,
                          const net::CodeAssignment& assignment,
                          ColorScratch& scratch) {
  scratch.reset();
  for (net::NodeId w : adj[v]) {
    const net::Color c = assignment.color(w);
    if (c != net::kNoColor) scratch.mark(c);
  }
}

/// Colors `sequence` in order; each node takes the lowest color not used by
/// an already-colored conflict neighbor.
net::Color greedy_in_sequence(const CachedAdjacency& adj,
                              const std::vector<net::NodeId>& sequence,
                              net::CodeAssignment& assignment) {
  net::Color used = 0;
  ColorScratch scratch;
  for (net::NodeId v : sequence) {
    mark_neighbor_colors(adj, v, assignment, scratch);
    const net::Color c = scratch.lowest_free();
    assignment.set_color(v, c);
    used = std::max(used, c);
  }
  return used;
}

/// DSATUR needs interleaved ordering and coloring, so it gets its own loop.
net::Color dsatur(const CachedAdjacency& adj,
                  const std::vector<net::NodeId>& vertices,
                  net::CodeAssignment& assignment) {
  std::size_t bound = 0;
  for (net::NodeId v : vertices) bound = std::max<std::size_t>(bound, v + 1);
  std::vector<char> pending(bound, 0);
  for (net::NodeId v : vertices) pending[v] = 1;

  net::Color used = 0;
  ColorScratch scratch;
  for (std::size_t step = 0; step < vertices.size(); ++step) {
    // Pick the pending vertex with maximum saturation (distinct colors among
    // its conflict neighbors), ties by degree then by lowest id.
    net::NodeId best = graph::kInvalidNode;
    std::size_t best_sat = 0;
    std::size_t best_deg = 0;
    for (net::NodeId v : vertices) {
      if (!pending[v]) continue;
      mark_neighbor_colors(adj, v, assignment, scratch);
      const std::size_t sat = scratch.saturation();
      const std::size_t deg = adj[v].size();
      if (best == graph::kInvalidNode || sat > best_sat ||
          (sat == best_sat && deg > best_deg)) {
        best = v;
        best_sat = sat;
        best_deg = deg;
      }
    }
    mark_neighbor_colors(adj, best, assignment, scratch);
    const net::Color c = scratch.lowest_free();
    assignment.set_color(best, c);
    used = std::max(used, c);
    pending[best] = 0;
  }
  return used;
}

}  // namespace

std::vector<net::NodeId> coloring_sequence(const net::AdhocNetwork& net,
                                           std::vector<net::NodeId> vertices,
                                           ColoringOrder order) {
  const CachedAdjacency adj{&net.conflict_graph()};
  switch (order) {
    case ColoringOrder::kSmallestLast:
      return graph::smallest_last_order(adj, vertices);
    case ColoringOrder::kLargestFirst:
      std::stable_sort(vertices.begin(), vertices.end(),
                       [&adj](net::NodeId a, net::NodeId b) {
                         return adj[a].size() > adj[b].size();
                       });
      return vertices;
    case ColoringOrder::kIdentity:
      std::sort(vertices.begin(), vertices.end());
      return vertices;
    case ColoringOrder::kDSatur:
      return vertices;  // handled by the dedicated loop
  }
  return vertices;
}

net::Color greedy_color_in_sequence(const net::AdhocNetwork& net,
                                    const std::vector<net::NodeId>& sequence,
                                    net::CodeAssignment& assignment) {
  return greedy_in_sequence(CachedAdjacency{&net.conflict_graph()}, sequence,
                            assignment);
}

net::Color greedy_color_subset(const net::AdhocNetwork& net,
                               const std::vector<net::NodeId>& vertices,
                               ColoringOrder order, net::CodeAssignment& assignment) {
  if (order == ColoringOrder::kDSatur)
    return dsatur(CachedAdjacency{&net.conflict_graph()}, vertices, assignment);
  return greedy_color_in_sequence(net, coloring_sequence(net, vertices, order),
                                  assignment);
}

net::Color color_network(const net::AdhocNetwork& net, ColoringOrder order,
                         net::CodeAssignment& out) {
  // Start all nodes uncolored so greedy sees a clean slate.
  for (net::NodeId v : net.nodes()) out.clear(v);
  return greedy_color_subset(net, net.nodes(), order, out);
}

}  // namespace minim::strategies
