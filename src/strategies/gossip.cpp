#include "strategies/gossip.hpp"

#include "net/constraints.hpp"

namespace minim::strategies {

GossipResult gossip_compact(const net::AdhocNetwork& net,
                            net::CodeAssignment& assignment,
                            const GossipParams& params) {
  GossipResult result;
  const auto nodes = net.nodes();
  result.max_color_before = assignment.max_color(nodes);

  std::vector<net::NodeId> order(nodes);
  std::vector<net::Color> forbidden;  // scratch reused across nodes
  for (std::size_t round = 0; round < params.max_rounds; ++round) {
    ++result.rounds;
    if (params.rng != nullptr) params.rng->shuffle(order);
    bool changed = false;
    for (net::NodeId v : order) {
      const net::Color current = assignment.color(v);
      if (current == net::kNoColor) continue;
      net::forbidden_colors(net, assignment, v, forbidden);
      const net::Color lowest = net::lowest_free_color(forbidden);
      if (lowest < current) {
        assignment.set_color(v, lowest);
        ++result.recodings;
        changed = true;
      }
    }
    if (!changed) break;  // fixed point: greedy-stable assignment
  }
  result.max_color_after = assignment.max_color(nodes);
  return result;
}

}  // namespace minim::strategies
