#include "strategies/factory.hpp"

#include "core/minim.hpp"
#include "strategies/bbb.hpp"
#include "strategies/cp.hpp"
#include "util/require.hpp"

namespace minim::strategies {

core::StrategyPtr make_strategy(const std::string& name) {
  if (name == "minim") return std::make_unique<core::MinimStrategy>();
  if (name == "minim-greedy") {
    core::MinimStrategy::Params p;
    p.matcher = core::MinimStrategy::Matcher::kGreedy;
    return std::make_unique<core::MinimStrategy>(p);
  }
  if (name == "minim-cardinality") {
    core::MinimStrategy::Params p;
    p.matcher = core::MinimStrategy::Matcher::kCardinality;
    return std::make_unique<core::MinimStrategy>(p);
  }
  if (name == "cp") return std::make_unique<CpStrategy>();
  if (name == "cp-lowest") return std::make_unique<CpStrategy>(CpStrategy::Order::kLowestFirst);
  if (name == "cp-exact")
    return std::make_unique<CpStrategy>(CpStrategy::Order::kHighestFirst,
                                        CpStrategy::Vicinity::kExactConstraints);
  if (name == "bbb") return std::make_unique<BbbStrategy>();
  if (name == "bbb-bounded") {
    BbbStrategy::Params p;
    p.bounded_propagation = true;
    return std::make_unique<BbbStrategy>(ColoringOrder::kSmallestLast, p);
  }
  if (name == "bbb-dsatur") return std::make_unique<BbbStrategy>(ColoringOrder::kDSatur);
  if (name == "bbb-largest") return std::make_unique<BbbStrategy>(ColoringOrder::kLargestFirst);
  if (name == "bbb-identity") return std::make_unique<BbbStrategy>(ColoringOrder::kIdentity);
  MINIM_REQUIRE(false, "unknown strategy '" + name + "'; known: " + known_strategy_names());
  return nullptr;  // unreachable
}

std::string known_strategy_names() {
  return "minim, minim-greedy, minim-cardinality, cp, cp-lowest, cp-exact, "
         "bbb, bbb-bounded, bbb-dsatur, bbb-largest, bbb-identity";
}

}  // namespace minim::strategies
