#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/conflict_graph.hpp"

/// \file components.hpp
/// \brief Connected components of the rank-bounded propagation frontier.
///
/// Rank-bounded BBB propagation (bbb.cpp) pops dirty nodes in non-decreasing
/// maintained rank and, when a node's color changes, pushes only its
/// *later-ranked* conflict neighbors.  The set of nodes such a propagation
/// can ever touch is therefore contained in the **forward closure** of the
/// seed set: walk conflict rows from the seeds, following an edge u–w only
/// when `rank(w) > rank(u)`.  The closure R is forward-closed by
/// construction — every later-ranked neighbor of an R-node is itself in R —
/// so conflict edges that leave R point exclusively at *earlier* ranks, i.e.
/// at colors the propagation reads but never writes.
///
/// `DirtyComponents` computes that closure and, fused into the same walk,
/// partitions it into connected components of the conflict graph restricted
/// to R (union-find over every intra-R edge the walk crosses).  Two nodes in
/// different components share no conflict edge inside R, and edges out of R
/// only reach read-only earlier-rank colors, so the bounded propagation of
/// one component can neither read a color another component writes nor push
/// a node another component owns.  That independence is what makes the
/// component-parallel recolor in `BbbStrategy` bit-identical to the serial
/// pass (see bbb.hpp, "Parallel recoloring").
///
/// The walk refuses (returns false) as soon as the closure exceeds
/// `node_cap` — the caller's propagation budget.  A closure within the
/// budget proves the serial pass could never hit its slack bailout (it pops
/// at most |R| ≤ budget nodes), so the parallel path only ever runs batches
/// the serial path would have absorbed, and demotion on refusal loses
/// nothing but the parallelism.
namespace minim::strategies {

class DirtyComponents {
 public:
  /// Rank value of ids outside the maintained order (matches
  /// `DegeneracyOrderer::kNoRank`).  Unranked ids — departed/tombstoned, or
  /// past the rank span — are never entered: a departed node has no conflict
  /// row, and the bounded path never pushes an unranked neighbor.
  static constexpr std::uint32_t kUnranked = static_cast<std::uint32_t>(-1);

  /// Decomposes the forward closure of `seeds` (deduped, any order) under
  /// rank-increasing conflict edges of `cg` into connected components.
  /// `rank` is the id-indexed maintained rank span (ids past its end are
  /// unranked).  Unranked seeds are skipped.  Returns false — leaving the
  /// previous decomposition invalid — when the closure would exceed
  /// `node_cap` nodes.
  bool decompose(const net::ConflictGraph& cg, std::span<const std::uint32_t> rank,
                 std::span<const net::NodeId> seeds, std::size_t node_cap);

  /// Number of components of the last successful decompose.
  std::size_t count() const { return component_count_; }

  /// Total nodes in the closure (sum of member counts).
  std::size_t closure_size() const { return members_flat_.size(); }

  /// Members of component `c`, in the discovery order of the walk
  /// (deterministic: a pure function of graph, ranks, and seed order).
  std::span<const net::NodeId> members(std::size_t c) const {
    return {members_flat_.data() + member_offsets_[c],
            member_offsets_[c + 1] - member_offsets_[c]};
  }

  /// The seeds that fell into component `c`, preserving the caller's seed
  /// order — the order the bounded path heapifies them in.
  std::span<const net::NodeId> seeds(std::size_t c) const {
    return {seeds_flat_.data() + seed_offsets_[c],
            seed_offsets_[c + 1] - seed_offsets_[c]};
  }

 private:
  /// Local index of `v`, creating it (members/union-find slot + BFS stack
  /// entry) on first visit.  `v` must be below the visit arrays' bound.
  std::uint32_t visit(net::NodeId v);
  std::uint32_t find(std::uint32_t x);

  // Epoch-stamped visit marks: a slot belongs to the current decompose iff
  // its stamp equals epoch_, so reuse across calls is O(closure), not O(n).
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> visit_epoch_;  ///< id-indexed
  std::vector<std::uint32_t> local_of_;     ///< id -> local index (when visited)

  // Walk state, local-indexed (dense over the closure).
  std::vector<net::NodeId> members_;   ///< local index -> id, discovery order
  std::vector<std::uint32_t> parent_;  ///< union-find forest
  std::vector<std::uint32_t> uf_size_; ///< union-by-size weights
  std::vector<net::NodeId> stack_;     ///< BFS/DFS frontier

  // Grouped output of the last successful decompose.
  std::size_t component_count_ = 0;
  std::vector<std::uint32_t> comp_of_local_;
  std::vector<std::uint32_t> root_comp_;  ///< union-find root -> component id
  std::vector<net::NodeId> members_flat_;
  std::vector<std::uint32_t> member_offsets_;
  std::vector<net::NodeId> seeds_flat_;
  std::vector<std::uint32_t> seed_offsets_;
  std::vector<std::uint32_t> cursor_;
};

}  // namespace minim::strategies
