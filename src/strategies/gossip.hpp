#pragma once

#include <cstddef>
#include <vector>

#include "net/assignment.hpp"
#include "net/network.hpp"
#include "util/rng.hpp"

/// \file gossip.hpp
/// \brief Gossip-based color compaction (the paper's Future Work, Section 6).
///
/// The paper closes by proposing "a recoding strategy that seeks to maximize
/// the network-wide code reuse by using a local gossiping strategy ...
/// during the (possibly significantly long) periods when no nodes connect
/// to, move about or increase their power".
///
/// We implement the natural realization: in repeated local rounds, each node
/// computes the lowest color consistent with its conflict partners' current
/// colors and adopts it when strictly lower than its own.  Each adoption
/// keeps the assignment valid (the new color avoids every constraint), so
/// validity is an invariant; colors only decrease, so the process terminates.
/// The fixed point is a *greedy-stable* assignment: no node can lower its
/// color unilaterally, hence max color <= 1 + max conflict degree.

namespace minim::strategies {

struct GossipResult {
  std::size_t recodings = 0;   ///< nodes that lowered their color (total adoptions)
  std::size_t rounds = 0;      ///< full passes executed (including the quiet one)
  net::Color max_color_before = net::kNoColor;
  net::Color max_color_after = net::kNoColor;
};

struct GossipParams {
  /// Safety valve; the process terminates on its own far earlier.
  std::size_t max_rounds = 1000;
  /// Visit order is shuffled per round when an Rng is supplied, modelling
  /// asynchronous gossip; nullptr = ascending-id deterministic rounds.
  util::Rng* rng = nullptr;
};

/// Runs compaction rounds until a full pass makes no change (or the round
/// limit hits).  `assignment` must be valid on entry and stays valid.
GossipResult gossip_compact(const net::AdhocNetwork& net,
                            net::CodeAssignment& assignment,
                            const GossipParams& params = {});

}  // namespace minim::strategies
