#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/strategy.hpp"

/// \file cp.hpp
/// \brief The CP baseline (Chlamtac-Pinter [3]), extended per Section 3.
///
/// CP is the prior distributed recoding scheme the paper compares against:
///
/// * **Join**: the new node plus every 1-hop (in-)neighbor whose color
///   collides with another 1-hop neighbor "deselect" their colors and pick
///   new ones in identity order — a node selects when it is the
///   highest-identity (or lowest, selectable) not-yet-colored candidate in
///   its *vicinity* (itself + nodes up to 2 undirected hops away).  It takes
///   the lowest color not used by any colored node in its vicinity.  Note
///   that the 2-hop vicinity over-approximates the true CA1/CA2 constraint
///   set, which is why CP burns more colors than Minim on joins.
/// * **Leave / power decrease**: nothing (same as Minim).
/// * **Move**: treated as a leave followed by a join at the new position
///   (the mover deselects its color and re-selects as a "new" node).
/// * **Power increase** (the paper's extension of CP): every node within two
///   hops of n that gained a *new* constraint with n and holds n's old
///   color recolors, along with n itself, in identity order as above.
///
/// Recodings are counted as color *changes*; a candidate that re-selects its
/// old color does not count (paper Fig 4: CP recodes 4 nodes, not 5).

namespace minim::strategies {

class CpStrategy final : public core::RecodingStrategy {
 public:
  /// Which end of the identity order selects first.
  enum class Order { kHighestFirst, kLowestFirst };

  /// What a recoloring candidate avoids when picking its new color.
  /// `kTwoHopBall` is the literal CP rule ("not yet taken by any of its
  /// 1 hop and 2 hop neighbors"); on *symmetric* graphs — CP's original
  /// setting — that set coincides with the true CA1/CA2 constraint set, but
  /// on this paper's directed model it over-approximates it.
  /// `kExactConstraints` avoids only true conflict partners, which is the
  /// faithful port of CP's intent to the directed model.
  enum class Vicinity { kTwoHopBall, kExactConstraints };

  explicit CpStrategy(Order order = Order::kHighestFirst,
                      Vicinity vicinity = Vicinity::kTwoHopBall)
      : order_(order), vicinity_(vicinity) {}

  std::string name() const override;

  core::RecodeReport on_join(const net::AdhocNetwork& net,
                             net::CodeAssignment& assignment, net::NodeId n) override;
  core::RecodeReport on_leave(const net::AdhocNetwork& net,
                              net::CodeAssignment& assignment,
                              net::NodeId departed) override;
  core::RecodeReport on_move(const net::AdhocNetwork& net,
                             net::CodeAssignment& assignment, net::NodeId n) override;
  core::RecodeReport on_power_change(const net::AdhocNetwork& net,
                                     net::CodeAssignment& assignment, net::NodeId n,
                                     double old_range) override;

  Order order() const { return order_; }
  Vicinity vicinity() const { return vicinity_; }

  /// Execution statistics of the last recoloring — what the distributed
  /// runtime needs for message accounting (the algorithm itself is
  /// identical, so proto::DistributedCp delegates here).
  struct RunStats {
    std::size_t rounds = 0;                      ///< elimination iterations
    std::vector<net::NodeId> candidates;         ///< recoloring set, ascending
    std::vector<std::size_t> vicinity_sizes;     ///< |2-hop ball| per candidate
    std::vector<std::size_t> pending_per_round;  ///< uncolored count entering each round
  };

  /// Installs a borrowed sink filled by every subsequent recoloring (null to
  /// detach).  Not thread-safe; intended for single-threaded tracing runs.
  void set_stats_sink(RunStats* sink) { stats_ = sink; }

 private:
  /// In-neighbors of n that share an old color with another in-neighbor —
  /// the CA2 casualties of a join/move at n.
  std::vector<net::NodeId> duplicate_color_neighbors(
      const net::AdhocNetwork& net, const net::CodeAssignment& assignment,
      net::NodeId n);

  /// Appends the 2-hop undirected ball of `v` (excluding `v`) to the shared
  /// vicinity pool and returns its (offset, size).  Visited tracking is an
  /// epoch-stamped array, so a query costs O(ball) with no per-candidate
  /// allocation or O(id_bound) clearing — the cache-served replacement for
  /// per-candidate `graph::k_hop_ball` calls.  Ball order is BFS order, not
  /// sorted; every consumer below is order-insensitive.
  std::pair<std::uint32_t, std::uint32_t> collect_two_hop(
      const net::AdhocNetwork& net, net::NodeId v);

  /// The identity-ordered distributed recoloring of `candidates` (their
  /// colors are deselected first).  Returns the per-node changes.
  core::RecodeReport recolor_candidates(const net::AdhocNetwork& net,
                                        net::CodeAssignment& assignment,
                                        std::vector<net::NodeId> candidates,
                                        net::NodeId subject,
                                        core::EventType event);

  Order order_;
  Vicinity vicinity_;
  RunStats* stats_ = nullptr;

  // Recoloring scratch, reused across events (strategies are driven from a
  // single thread): the flattened vicinity pool replaces the per-event
  // vector-of-vectors, `candidate_slot_` the per-lookup binary search.
  std::vector<std::uint32_t> visit_epoch_;  ///< id-indexed BFS stamps
  std::uint32_t epoch_ = 0;
  std::vector<net::NodeId> vicinity_pool_;  ///< all candidates' balls, packed
  std::vector<std::pair<std::uint32_t, std::uint32_t>> vicinity_spans_;
  std::vector<std::uint32_t> candidate_slot_;  ///< id -> candidate index + 1
  std::vector<net::Color> saved_old_;
  std::vector<net::Color> forbidden_;
  std::vector<char> colored_;
  std::vector<std::pair<net::Color, net::NodeId>> color_pairs_;
};

}  // namespace minim::strategies
