#pragma once

#include <functional>
#include <string>

#include "core/strategy.hpp"

/// \file factory.hpp
/// \brief Construct strategies by name for benches and examples.
///
/// Known names: "minim", "minim-greedy", "minim-cardinality", "cp",
/// "cp-lowest", "bbb", "bbb-dsatur", "bbb-largest", "bbb-identity".

namespace minim::strategies {

/// Builds the named strategy; throws std::invalid_argument on unknown names.
core::StrategyPtr make_strategy(const std::string& name);

/// All names accepted by `make_strategy`, for help text.
std::string known_strategy_names();

/// Pluggable named-strategy constructor used by the experiment engines.
/// An empty (default-constructed) factory means `make_strategy`.  Tests
/// inject custom factories — e.g. deliberately invalid strategies to prove
/// the validate flag really runs the CA1/CA2 checks.
using StrategyFactory = std::function<core::StrategyPtr(const std::string&)>;

}  // namespace minim::strategies
