#include "strategies/ordering.hpp"

#include "util/require.hpp"

namespace minim::strategies {

namespace {

/// Id-indexed adjacency view over the cached conflict graph (the shape
/// `graph::smallest_last_eliminate` expects).
struct CachedAdjacency {
  const net::ConflictGraph* conflict;
  std::span<const net::NodeId> operator[](net::NodeId v) const {
    return conflict->neighbors(v);
  }
};

}  // namespace

void DegeneracyOrderer::sync_degrees(const net::ConflictGraph& cg) {
  const std::size_t rows = cg.id_bound();
  bool repaired = false;
  // Keyed on the graph's process-unique nonce, not its address: a fresh
  // graph living where a destroyed one did must not inherit the mirror.
  if (params_.incremental && last_nonce_ == cg.nonce()) {
    // Joiners extend the row table; their fresh ids are journaled dirty, so
    // zero-extending the mirror keeps the repair complete.
    if (degrees_.size() < rows) degrees_.resize(rows, 0);
    dirty_.clear();
    if (!cg.append_dirty_since(last_revision_, dirty_)) {
      ++counters_.journal_fallbacks;
    } else if (static_cast<double>(dirty_.size()) >
               params_.rebuild_fraction * static_cast<double>(rows)) {
      ++counters_.threshold_fallbacks;
    } else {
      // Bounded repair: only journaled ids can have changed row sizes.
      for (net::NodeId v : dirty_) degrees_[v] = cg.degree(v);
      counters_.repaired_nodes += dirty_.size();
      repaired = true;
    }
  }
  if (!repaired) {
    ++counters_.degree_rebuilds;
    degrees_.assign(rows, 0);
    for (net::NodeId v = 0; v < rows; ++v) degrees_[v] = cg.degree(v);
  }
  last_nonce_ = cg.nonce();
  last_revision_ = cg.revision();
}

void DegeneracyOrderer::order(const net::AdhocNetwork& net,
                              const std::vector<net::NodeId>& vertices,
                              graph::DegeneracyTieBreak tie,
                              std::vector<net::NodeId>& out) {
  MINIM_REQUIRE(vertices.size() == net.node_count(),
                "DegeneracyOrderer: vertices must be the full live node set");
  const net::ConflictGraph& cg = net.conflict_graph();
  ++counters_.orders;
  sync_degrees(cg);

  // The conflict rows list live nodes only, so for the full vertex set the
  // restricted degree |adj[v] ∩ vertices| is exactly the row size — the
  // mirror feeds the elimination without an adjacency scan.
  const std::size_t bound = net.id_bound();
  arena_.in_set.assign(bound, 0);
  for (net::NodeId v : vertices) arena_.in_set[v] = 1;
  arena_.degree.assign(bound, 0);
  const std::size_t copy = std::min(bound, degrees_.size());
  std::copy(degrees_.begin(), degrees_.begin() + static_cast<std::ptrdiff_t>(copy),
            arena_.degree.begin());

  smallest_last_eliminate(CachedAdjacency{&cg}, vertices, tie, arena_);
  out = arena_.out;
}

}  // namespace minim::strategies
