#include "strategies/ordering.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace minim::strategies {

namespace {

/// Id-indexed adjacency view over the cached conflict graph (the shape
/// `graph::smallest_last_eliminate` expects).
struct CachedAdjacency {
  const net::ConflictGraph* conflict;
  std::span<const net::NodeId> operator[](net::NodeId v) const {
    return conflict->neighbors(v);
  }
};

}  // namespace

void DegeneracyOrderer::sync_degrees(const net::ConflictGraph& cg) {
  const std::size_t rows = cg.id_bound();
  bool repaired = false;
  // Keyed on the graph's process-unique nonce, not its address: a fresh
  // graph living where a destroyed one did must not inherit the mirror.
  if (params_.incremental && last_nonce_ == cg.nonce()) {
    // Joiners extend the row table; their fresh ids are journaled dirty, so
    // zero-extending the mirror keeps the repair complete.
    if (degrees_.size() < rows) degrees_.resize(rows, 0);
    dirty_.clear();
    if (!cg.append_dirty_since(last_revision_, dirty_)) {
      ++counters_.journal_fallbacks;
    } else if (static_cast<double>(dirty_.size()) >
               params_.rebuild_fraction * static_cast<double>(rows)) {
      ++counters_.threshold_fallbacks;
    } else {
      // Bounded repair: only journaled ids can have changed row sizes.
      for (net::NodeId v : dirty_) degrees_[v] = cg.degree(v);
      counters_.repaired_nodes += dirty_.size();
      repaired = true;
    }
  }
  if (!repaired) {
    ++counters_.degree_rebuilds;
    degrees_.assign(rows, 0);
    for (net::NodeId v = 0; v < rows; ++v) degrees_[v] = cg.degree(v);
  }
  last_nonce_ = cg.nonce();
  last_revision_ = cg.revision();
}

void DegeneracyOrderer::order(const net::AdhocNetwork& net,
                              const std::vector<net::NodeId>& vertices,
                              graph::DegeneracyTieBreak tie,
                              std::vector<net::NodeId>& out) {
  MINIM_REQUIRE(vertices.size() == net.node_count(),
                "DegeneracyOrderer: vertices must be the full live node set");
  const net::ConflictGraph& cg = net.conflict_graph();
  ++counters_.orders;
  sync_degrees(cg);

  // The conflict rows list live nodes only, so for the full vertex set the
  // restricted degree |adj[v] ∩ vertices| is exactly the row size — the
  // mirror feeds the elimination without an adjacency scan.
  const std::size_t bound = net.id_bound();
  arena_.in_set.assign(bound, 0);
  for (net::NodeId v : vertices) arena_.in_set[v] = 1;
  arena_.degree.assign(bound, 0);
  const std::size_t copy = std::min(bound, degrees_.size());
  std::copy(degrees_.begin(), degrees_.begin() + static_cast<std::ptrdiff_t>(copy),
            arena_.degree.begin());

  smallest_last_eliminate(CachedAdjacency{&cg}, vertices, tie, arena_);
  out = arena_.out;
}

bool DegeneracyOrderer::ranks_maintained_for(const net::AdhocNetwork& net) const {
  return rank_nonce_ != 0 && rank_nonce_ == net.conflict_graph().nonce();
}

bool DegeneracyOrderer::try_maintain_ranks(const net::AdhocNetwork& net,
                                           std::span<const net::NodeId> dirty,
                                           std::span<const net::NodeId> join_order,
                                           std::span<const net::NodeId> reborn) {
  if (!ranks_maintained_for(net)) return false;

  const auto is_reborn = [&reborn](net::NodeId v) {
    return std::binary_search(reborn.begin(), reborn.end(), v);
  };

  // Pass 1 — classify without mutating, so a drift-threshold refusal leaves
  // the maintained order exactly as it was (the caller rebuilds from a fresh
  // canonical sequence either way).  A reborn id (freed and reused within
  // the window) is both a departure of its previous occupant — tombstoned —
  // and a fresh joiner — appended.
  std::size_t tombstones = 0;
  appended_.clear();
  for (net::NodeId v : dirty) {
    const bool ranked = rank(v) != kNoRank;
    if (!net.contains(v)) {
      if (ranked) ++tombstones;
    } else if (is_reborn(v)) {
      if (ranked) ++tombstones;
      appended_.push_back(v);
    } else if (!ranked) {
      appended_.push_back(v);
    }
  }

  const std::size_t drift = rank_drift_ + tombstones + appended_.size();
  if (static_cast<double>(drift) > params_.rank_rebuild_fraction *
                                       static_cast<double>(net.node_count()))
    return false;

  // Pass 2 — apply.  Departures (and the previous occupants of reborn ids)
  // empty their slot in place; no other node moves, which is the
  // no-flips-among-survivors invariant bounded BBB propagation relies on.
  for (net::NodeId v : dirty) {
    if (net.contains(v) && !is_reborn(v)) continue;
    const std::uint32_t r = rank(v);
    if (r == kNoRank) continue;
    rank_seq_[r] = net::kInvalidNode;
    rank_[v] = kNoRank;
  }

  // Joiners go at the tail.  With a caller-supplied `join_order` (batched
  // absorption) they keep the order a sequential replay would have appended
  // them in — the relative-order source the bounded recolor's equivalence
  // claim rests on.  Otherwise (single-event absorption, or ids the caller
  // did not list) they sort by descending conflict degree then ascending id
  // — the neighborhood a fresh node would occupy late in a smallest-last
  // order anyway.  Their relative order against survivors *is* new, but
  // every conflict neighbor of a joiner is journal-dirty (each pair's 0 → 1
  // witness transition marks both ends), so the propagation seeds already
  // cover every flip this introduces.
  const net::ConflictGraph& cg = net.conflict_graph();
  join_pos_.clear();
  for (std::uint32_t i = 0; i < join_order.size(); ++i)
    join_pos_.emplace_back(join_order[i], i);
  std::sort(join_pos_.begin(), join_pos_.end());
  const auto join_position = [this](net::NodeId v) -> std::uint32_t {
    const auto it = std::lower_bound(
        join_pos_.begin(), join_pos_.end(),
        std::make_pair(v, std::uint32_t{0}),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    return it != join_pos_.end() && it->first == v
               ? it->second
               : static_cast<std::uint32_t>(-1);  // unlisted: after everyone
  };
  std::sort(appended_.begin(), appended_.end(),
            [&cg, &join_position](net::NodeId a, net::NodeId b) {
              const std::uint32_t pa = join_position(a);
              const std::uint32_t pb = join_position(b);
              if (pa != pb) return pa < pb;
              const std::size_t da = cg.degree(a);
              const std::size_t db = cg.degree(b);
              if (da != db) return da > db;
              return a < b;
            });
  for (net::NodeId v : appended_) {
    if (v >= rank_.size()) rank_.resize(v + 1, kNoRank);
    rank_[v] = static_cast<std::uint32_t>(rank_seq_.size());
    rank_seq_.push_back(v);
  }

  rank_drift_ = drift;
  counters_.rank_tombstones += tombstones;
  counters_.rank_appends += appended_.size();
  ++counters_.rank_updates;
  return true;
}

void DegeneracyOrderer::rebuild_ranks(const net::AdhocNetwork& net,
                                      const std::vector<net::NodeId>& sequence) {
  MINIM_REQUIRE(sequence.size() == net.node_count(),
                "rebuild_ranks: sequence must cover the full live node set");
  rank_nonce_ = net.conflict_graph().nonce();
  rank_seq_ = sequence;
  rank_.assign(net.id_bound(), kNoRank);
  for (std::uint32_t i = 0; i < rank_seq_.size(); ++i)
    rank_[rank_seq_[i]] = i;
  rank_drift_ = 0;
  ++counters_.rank_rebuilds;
}

}  // namespace minim::strategies
