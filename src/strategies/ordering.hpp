#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/algorithms.hpp"
#include "net/network.hpp"

/// \file ordering.hpp
/// \brief Incrementally maintained degeneracy (smallest-last) ordering.
///
/// PR 3 made BBB's recoloring local, which left the smallest-last *ordering*
/// as the dominant per-event term: every event recomputed the vertex degrees
/// from an O(V+E) adjacency scan and rebuilt the bucket structure from
/// freshly allocated storage.  `DegeneracyOrderer` removes both costs:
///
/// * it mirrors every node's conflict degree, synchronized from the conflict
///   cache's dirty journal — a bounded repair touching only the nodes whose
///   conflict neighborhood changed since the last order, falling back to a
///   full degree rebuild when the journal window is gone or the dirty region
///   exceeds `Params::rebuild_fraction` of the id space;
/// * the elimination replays through a persistent `graph::EliminationArena`,
///   so a steady-state event performs no allocation.
///
/// The produced order is bit-identical to from-scratch
/// `graph::smallest_last_order` on the current graph for every tie-break —
/// both run the same `smallest_last_eliminate` core on equal inputs, and the
/// randomized event soaks in tests/strategies/ordering_test.cpp hold it to
/// that.  BBB's dirty-region recoloring depends on exactly this equivalence.
///
/// ## Maintained ranks (rank-bounded BBB)
///
/// Even with the mirror, *serving* an order is O(V+E): the elimination
/// replays over every vertex.  The second mode removes that last per-event
/// linear scan.  Instead of recomputing the order, the orderer keeps a
/// persistent **stable rank index** — `rank(v)` is v's slot in a stored
/// coloring sequence — and absorbs each event's conflict-journal dirty set
/// locally:
///
///   * departed ids are tombstoned (their slot empties; nobody else moves);
///   * never-ranked ids (joiners) are appended at the tail, ordered among
///     themselves by descending conflict degree then id (where a fresh
///     low-degree node tends to land under smallest-last anyway);
///   * every other live node keeps its exact rank.
///
/// The invariant this buys is what bounded change propagation needs: in an
/// absorbed ("bounded") update, the *relative* order of any two previously
/// ranked nodes is unchanged, so a greedy recolor can only differ at ranks
/// reachable from the dirty set — no order flip exists anywhere else.  The
/// stored order drifts away from true smallest-last as events accumulate;
/// when appends + tombstones since the last rebuild exceed
/// `Params::rank_rebuild_fraction` of the live set, `try_maintain_ranks`
/// refuses and the caller reseeds via `rebuild_ranks` with a fresh canonical
/// sequence (amortized O(mean degree) per event).  The coloring-quality cost
/// of the drift is the explicit metric the bounded-BBB fuzz harness gates.
namespace minim::strategies {

class DegeneracyOrderer {
 public:
  struct Params {
    /// Serve degrees from the journal-synced mirror.  Disable to recompute
    /// the mirror from the conflict rows on every order (the reference
    /// behavior the equivalence soaks compare against).
    bool incremental = true;
    /// Full degree rebuild when more than this fraction of the id space was
    /// journaled dirty since the last order (raw journal entries, so repeats
    /// count — a deliberately conservative trigger).
    double rebuild_fraction = 0.25;
    /// Maintained-rank drift bound: `try_maintain_ranks` demands a rebuild
    /// once appends + tombstones since the last `rebuild_ranks` exceed this
    /// fraction of the live node count.
    double rank_rebuild_fraction = 0.25;
  };

  /// Why the last `order()` call refreshed its degree mirror the way it did.
  struct Counters {
    std::uint64_t orders = 0;
    std::uint64_t repaired_nodes = 0;     ///< dirty ids patched in place
    std::uint64_t degree_rebuilds = 0;    ///< full mirror recomputes (any cause)
    std::uint64_t threshold_fallbacks = 0;///< rebuilds forced by rebuild_fraction
    std::uint64_t journal_fallbacks = 0;  ///< rebuilds forced by a lost window
    // Maintained-rank mode.
    std::uint64_t rank_updates = 0;       ///< absorbed (bounded) updates
    std::uint64_t rank_rebuilds = 0;      ///< rebuild_ranks calls
    std::uint64_t rank_appends = 0;       ///< joiners appended at the tail
    std::uint64_t rank_tombstones = 0;    ///< departures tombstoned in place
  };

  /// Rank of an id never present in the maintained order.
  static constexpr std::uint32_t kNoRank = static_cast<std::uint32_t>(-1);

  DegeneracyOrderer() = default;
  explicit DegeneracyOrderer(Params params) : params_(params) {}

  /// Smallest-last coloring order of `vertices` over `net`'s cached conflict
  /// graph, written into `out`.  Requires `vertices` to be the network's
  /// full live node set (ascending) — the precondition under which the
  /// degree mirror equals the conflict row sizes.
  void order(const net::AdhocNetwork& net, const std::vector<net::NodeId>& vertices,
             graph::DegeneracyTieBreak tie, std::vector<net::NodeId>& out);

  // ---------------------------------------------------- maintained ranks

  /// Absorbs one event's deduped dirty set (raw conflict-journal ids; the
  /// caller sorts/uniques but does NOT filter liveness — departures are
  /// recognized here) into the maintained order.  Returns false — leaving
  /// the maintained state unmodified — when no order is maintained for this
  /// network yet or the accumulated drift demands a rebuild; the caller must
  /// then compute a fresh full sequence and hand it to `rebuild_ranks`.
  ///
  /// Batched absorption: when the dirty window covers several events, the
  /// caller passes `join_order` (the batch's live joiners in join order) so
  /// appends land in the order a sequential replay would have appended
  /// them, and `reborn` (sorted ascending: ids freed and reused within the
  /// window) so a reused id is tombstoned out of its previous occupant's
  /// slot before being appended as the new one.  Both default empty — the
  /// single-event behavior, where the (at most one) joiner's append order
  /// is trivially its join order.
  bool try_maintain_ranks(const net::AdhocNetwork& net,
                          std::span<const net::NodeId> dirty,
                          std::span<const net::NodeId> join_order = {},
                          std::span<const net::NodeId> reborn = {});

  /// Resets the maintained order to `sequence` (all live nodes, dense).
  void rebuild_ranks(const net::AdhocNetwork& net,
                     const std::vector<net::NodeId>& sequence);

  /// The maintained rank of `v`; `kNoRank` for unranked/departed ids.
  std::uint32_t rank(net::NodeId v) const {
    return v < rank_.size() ? rank_[v] : kNoRank;
  }

  /// The maintained coloring sequence; `net::kInvalidNode` marks tombstoned
  /// slots.  `ranked_sequence()[rank(v)] == v` for every ranked v.
  const std::vector<net::NodeId>& ranked_sequence() const { return rank_seq_; }

  /// The id-indexed rank span backing `rank()`: `kNoRank` marks departed/
  /// never-ranked ids, and ids at or past the span's end are unranked.
  /// Read-only view for the component decomposer (components.hpp);
  /// invalidated by the next maintain/rebuild.
  std::span<const std::uint32_t> rank_index() const { return rank_; }

  /// True when a maintained order exists for `net`'s conflict graph.
  bool ranks_maintained_for(const net::AdhocNetwork& net) const;

  const Params& params() const { return params_; }
  const Counters& counters() const { return counters_; }

 private:
  /// Brings the degree mirror up to date with `cg`; see the file comment.
  void sync_degrees(const net::ConflictGraph& cg);

  Params params_;
  Counters counters_;
  std::uint64_t last_nonce_ = 0;  ///< ConflictGraph::nonce() of the mirror
  std::uint64_t last_revision_ = 0;
  std::vector<std::size_t> degrees_;  ///< id-indexed conflict-degree mirror
  std::vector<net::NodeId> dirty_;
  graph::EliminationArena arena_;

  // Maintained-rank state (see the file comment).
  std::uint64_t rank_nonce_ = 0;        ///< 0 = no maintained order
  std::vector<net::NodeId> rank_seq_;   ///< stored order, with tombstones
  std::vector<std::uint32_t> rank_;     ///< id -> slot in rank_seq_
  std::size_t rank_drift_ = 0;          ///< appends + tombstones since rebuild
  std::vector<net::NodeId> appended_;   ///< per-update scratch (joiners)
  /// Per-update scratch: (id, position in the caller's join order), sorted
  /// by id for binary search while ordering appends.
  std::vector<std::pair<net::NodeId, std::uint32_t>> join_pos_;
};

}  // namespace minim::strategies
