#pragma once

#include <cstdint>
#include <vector>

#include "graph/algorithms.hpp"
#include "net/network.hpp"

/// \file ordering.hpp
/// \brief Incrementally maintained degeneracy (smallest-last) ordering.
///
/// PR 3 made BBB's recoloring local, which left the smallest-last *ordering*
/// as the dominant per-event term: every event recomputed the vertex degrees
/// from an O(V+E) adjacency scan and rebuilt the bucket structure from
/// freshly allocated storage.  `DegeneracyOrderer` removes both costs:
///
/// * it mirrors every node's conflict degree, synchronized from the conflict
///   cache's dirty journal — a bounded repair touching only the nodes whose
///   conflict neighborhood changed since the last order, falling back to a
///   full degree rebuild when the journal window is gone or the dirty region
///   exceeds `Params::rebuild_fraction` of the id space;
/// * the elimination replays through a persistent `graph::EliminationArena`,
///   so a steady-state event performs no allocation.
///
/// The produced order is bit-identical to from-scratch
/// `graph::smallest_last_order` on the current graph for every tie-break —
/// both run the same `smallest_last_eliminate` core on equal inputs, and the
/// randomized event soaks in tests/strategies/ordering_test.cpp hold it to
/// that.  BBB's dirty-region recoloring depends on exactly this equivalence.
namespace minim::strategies {

class DegeneracyOrderer {
 public:
  struct Params {
    /// Serve degrees from the journal-synced mirror.  Disable to recompute
    /// the mirror from the conflict rows on every order (the reference
    /// behavior the equivalence soaks compare against).
    bool incremental = true;
    /// Full degree rebuild when more than this fraction of the id space was
    /// journaled dirty since the last order (raw journal entries, so repeats
    /// count — a deliberately conservative trigger).
    double rebuild_fraction = 0.25;
  };

  /// Why the last `order()` call refreshed its degree mirror the way it did.
  struct Counters {
    std::uint64_t orders = 0;
    std::uint64_t repaired_nodes = 0;     ///< dirty ids patched in place
    std::uint64_t degree_rebuilds = 0;    ///< full mirror recomputes (any cause)
    std::uint64_t threshold_fallbacks = 0;///< rebuilds forced by rebuild_fraction
    std::uint64_t journal_fallbacks = 0;  ///< rebuilds forced by a lost window
  };

  DegeneracyOrderer() = default;
  explicit DegeneracyOrderer(Params params) : params_(params) {}

  /// Smallest-last coloring order of `vertices` over `net`'s cached conflict
  /// graph, written into `out`.  Requires `vertices` to be the network's
  /// full live node set (ascending) — the precondition under which the
  /// degree mirror equals the conflict row sizes.
  void order(const net::AdhocNetwork& net, const std::vector<net::NodeId>& vertices,
             graph::DegeneracyTieBreak tie, std::vector<net::NodeId>& out);

  const Params& params() const { return params_; }
  const Counters& counters() const { return counters_; }

 private:
  /// Brings the degree mirror up to date with `cg`; see the file comment.
  void sync_degrees(const net::ConflictGraph& cg);

  Params params_;
  Counters counters_;
  std::uint64_t last_nonce_ = 0;  ///< ConflictGraph::nonce() of the mirror
  std::uint64_t last_revision_ = 0;
  std::vector<std::size_t> degrees_;  ///< id-indexed conflict-degree mirror
  std::vector<net::NodeId> dirty_;
  graph::EliminationArena arena_;
};

}  // namespace minim::strategies
