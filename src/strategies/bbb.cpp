#include "strategies/bbb.hpp"

namespace minim::strategies {

std::string BbbStrategy::name() const {
  if (order_ == ColoringOrder::kSmallestLast) return "BBB";
  return std::string("BBB/") + to_string(order_);
}

core::RecodeReport BbbStrategy::global_recolor(const net::AdhocNetwork& net,
                                               net::CodeAssignment& assignment,
                                               core::EventType event,
                                               net::NodeId subject) const {
  core::RecodeReport report;
  report.event = event;
  report.subject = subject;

  // Remember the previous assignment to count changes.
  const auto nodes = net.nodes();
  std::vector<net::Color> old_colors;
  old_colors.reserve(nodes.size());
  for (net::NodeId v : nodes) old_colors.push_back(assignment.color(v));

  color_network(net, order_, assignment);

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const net::Color fresh = assignment.color(nodes[i]);
    if (fresh != old_colors[i])
      report.changes.push_back(core::Recode{nodes[i], old_colors[i], fresh});
  }
  finalize_report(net, assignment, report);
  return report;
}

core::RecodeReport BbbStrategy::on_join(const net::AdhocNetwork& net,
                                        net::CodeAssignment& assignment, net::NodeId n) {
  return global_recolor(net, assignment, core::EventType::kJoin, n);
}

core::RecodeReport BbbStrategy::on_leave(const net::AdhocNetwork& net,
                                         net::CodeAssignment& assignment,
                                         net::NodeId departed) {
  return global_recolor(net, assignment, core::EventType::kLeave, departed);
}

core::RecodeReport BbbStrategy::on_move(const net::AdhocNetwork& net,
                                        net::CodeAssignment& assignment, net::NodeId n) {
  return global_recolor(net, assignment, core::EventType::kMove, n);
}

core::RecodeReport BbbStrategy::on_power_change(const net::AdhocNetwork& net,
                                                net::CodeAssignment& assignment,
                                                net::NodeId n, double old_range) {
  const double new_range = net.config(n).range;
  const core::EventType event = new_range > old_range ? core::EventType::kPowerIncrease
                                                      : core::EventType::kPowerDecrease;
  return global_recolor(net, assignment, event, n);
}

}  // namespace minim::strategies
