#include "strategies/bbb.hpp"

#include <algorithm>
#include <span>
#include <thread>
#include <utility>

#include "net/conflict_graph.hpp"
#include "util/require.hpp"

namespace minim::strategies {

std::string BbbStrategy::name() const {
  if (order_ == ColoringOrder::kSmallestLast)
    return params_.bounded_propagation ? "BBB-bounded" : "BBB";
  return std::string("BBB/") + to_string(order_);
}

const std::vector<net::NodeId>& BbbStrategy::sequence_for(
    const net::AdhocNetwork& net, const std::vector<net::NodeId>& nodes) {
  if (order_ == ColoringOrder::kSmallestLast && params_.incremental_order) {
    orderer_.order(net, nodes, graph::DegeneracyTieBreak::kStack, seq_);
    return seq_;
  }
  seq_ = coloring_sequence(net, nodes, order_);
  return seq_;
}

void BbbStrategy::snapshot(const net::AdhocNetwork& net,
                           const std::vector<net::NodeId>& sequence,
                           const net::CodeAssignment& assignment) {
  last_net_ = &net;
  last_revision_ = net.conflict_graph().revision();
  const std::size_t bound = net.id_bound();
  last_colors_.assign(bound, net::kNoColor);
  last_pos_.assign(bound, kNoPos);
  for (std::uint32_t i = 0; i < sequence.size(); ++i) {
    const net::NodeId v = sequence[i];
    last_colors_[v] = assignment.color(v);
    last_pos_[v] = i;
  }
}

bool BbbStrategy::incremental_recolor(const net::AdhocNetwork& net,
                                      net::CodeAssignment& assignment,
                                      const std::vector<net::NodeId>& nodes,
                                      core::RecodeReport& report) {
  const net::ConflictGraph& cg = net.conflict_graph();
  if (last_net_ != &net) return false;
  dirty_.clear();
  if (!cg.append_dirty_since(last_revision_, dirty_)) return false;

  // The snapshot must describe this assignment: every live node's color has
  // to match (the engine only clears departed ids in between).  An
  // out-of-band mutation — tests driving several strategies over one
  // network — falls back to the from-scratch path.
  for (net::NodeId v : nodes)
    if (snapshot_color(v) != assignment.color(v)) return false;

  std::sort(dirty_.begin(), dirty_.end());
  dirty_.erase(std::unique(dirty_.begin(), dirty_.end()), dirty_.end());
  std::erase_if(dirty_, [&net](net::NodeId v) { return !net.contains(v); });
  if (static_cast<double>(dirty_.size()) >
      params_.full_recolor_fraction * static_cast<double>(nodes.size()))
    return false;

  // The from-scratch greedy's coloring order on the *new* graph.
  const std::vector<net::NodeId>& sequence = sequence_for(net, nodes);
  const std::size_t bound = net.id_bound();
  pos_.assign(bound, kNoPos);
  for (std::uint32_t i = 0; i < sequence.size(); ++i) pos_[sequence[i]] = i;

  adj_dirty_.assign(bound, 0);
  for (net::NodeId v : dirty_) adj_dirty_[v] = 1;
  changed_.assign(bound, 0);
  new_colors_.assign(bound, net::kNoColor);
  for (net::NodeId v : nodes) new_colors_[v] = assignment.color(v);

  // Change propagation in coloring order.  A node keeps its color unless
  // (a) its conflict neighborhood changed, (b) its relative order with a
  // neighbor flipped, or (c) an earlier-ordered neighbor changed color —
  // otherwise its lowest-free computation would see the exact inputs of the
  // previous run, so the from-scratch greedy provably reassigns the same
  // color.
  for (std::uint32_t idx = 0; idx < sequence.size(); ++idx) {
    const net::NodeId u = sequence[idx];
    const auto neighbors = cg.neighbors(u);
    bool recompute = adj_dirty_[u] != 0;
    if (!recompute && (u >= last_pos_.size() || last_pos_[u] == kNoPos))
      recompute = true;  // unseen node: defensive, implies adj_dirty anyway
    if (!recompute) {
      const std::uint32_t pu_old = last_pos_[u];
      for (net::NodeId w : neighbors) {
        const std::uint32_t pw_old = w < last_pos_.size() ? last_pos_[w] : kNoPos;
        if (pw_old == kNoPos) {
          recompute = true;  // new neighbor (implies adj_dirty; defensive)
          break;
        }
        const bool now_before = pos_[w] < idx;
        if (now_before != (pw_old < pu_old) || (now_before && changed_[w])) {
          recompute = true;
          break;
        }
      }
    }
    if (!recompute) continue;

    // Lowest color free of the earlier-ordered neighbors' (final) colors.
    scratch_.reset();
    for (net::NodeId w : neighbors) {
      if (pos_[w] >= idx) continue;
      const net::Color c = new_colors_[w];
      if (c != net::kNoColor) scratch_.mark(c);
    }
    const net::Color fresh = scratch_.lowest_free();

    new_colors_[u] = fresh;
    changed_[u] = fresh != snapshot_color(u) ? 1 : 0;
  }

  // Apply and report in ascending node order — the order the from-scratch
  // path emits its changes in.
  for (net::NodeId v : nodes) {
    if (!changed_[v]) continue;
    assignment.set_color(v, new_colors_[v]);
    report.changes.push_back(core::Recode{v, snapshot_color(v), new_colors_[v]});
  }
  snapshot(net, sequence, assignment);
  return true;
}

bool BbbStrategy::bounded_recolor(const net::AdhocNetwork& net,
                                  net::CodeAssignment& assignment,
                                  core::RecodeReport& report,
                                  std::size_t batch_events,
                                  std::span<const net::NodeId> joiners,
                                  std::span<const net::NodeId> reborn) {
  const net::ConflictGraph& cg = net.conflict_graph();
  if (last_net_ != &net) return false;
  std::span<const net::NodeId> window;
  if (!cg.dirty_window_since(last_revision_, window)) return false;

  dirty_.assign(window.begin(), window.end());
  std::sort(dirty_.begin(), dirty_.end());
  dirty_.erase(std::unique(dirty_.begin(), dirty_.end()), dirty_.end());
  const std::size_t live = net.node_count();
  if (static_cast<double>(dirty_.size()) >
      params_.full_recolor_fraction * static_cast<double>(live))
    return false;

  // Foreign-mutation guard.  The full incremental path sweeps every live
  // node; here that sweep is exactly the O(n) this mode removes, so only the
  // dirty region is checked — an out-of-band recolor of an untouched node is
  // *not* detected by the bounded path (bench/sim drive one strategy per
  // assignment, which is the supported regime).
  for (net::NodeId v : dirty_)
    if (net.contains(v) && snapshot_color(v) != assignment.color(v))
      return false;

  // Absorb the event(s) into the maintained rank order: departures
  // tombstone, joiners append in the batch's join order, reborn ids
  // tombstone-then-append.  A refusal (drift over threshold, or no order
  // yet) sends the event to the from-scratch path, which reseeds via
  // rebuild_ranks.
  if (!orderer_.try_maintain_ranks(net, dirty_, joiners, reborn)) return false;

  // Heap propagation (see propagate()).  Seeds are the live dirty nodes;
  // with recolor_threads > 1 the seeds are first decomposed into independent
  // closure components and propagated concurrently (parallel_propagate()),
  // demoting to the single serial frontier when the closure is one region
  // or outgrows the budget.  Either way the result is the same.
  if (++epoch_ == 0) {
    // Stamp wraparound: invalidate every slot once per 2^32 events.
    std::fill(seen_epoch_.begin(), seen_epoch_.end(), 0);
    std::fill(event_color_epoch_.begin(), event_color_epoch_.end(), 0);
    epoch_ = 1;
  }
  const std::size_t bound = net.id_bound();
  if (seen_epoch_.size() < bound) seen_epoch_.resize(bound, 0);
  if (event_color_epoch_.size() < bound) {
    event_color_epoch_.resize(bound, 0);
    event_colors_.resize(bound, net::kNoColor);
  }
  if (last_colors_.size() < bound) last_colors_.resize(bound, net::kNoColor);

  live_dirty_.clear();
  for (net::NodeId v : dirty_) {
    if (!net.contains(v)) continue;
    MINIM_REQUIRE(orderer_.rank(v) != DegeneracyOrderer::kNoRank,
                  "bounded BBB: live dirty node missing from the rank order");
    live_dirty_.push_back(v);
  }

  // One batch coalesces `batch_events` events' worth of propagation, so it
  // gets their combined budget — a bailout still costs one from-scratch
  // pass either way, which is the amortization the batch path exists for.
  const std::size_t budget =
      batch_events *
      std::max<std::size_t>(
          32, static_cast<std::size_t>(params_.propagation_slack *
                                       static_cast<double>(live)));
  std::size_t processed = 0;
  changed_list_.clear();
  bool absorbed = false;
  if (resolved_recolor_threads() > 1 && live_dirty_.size() > 1)
    absorbed = parallel_propagate(cg, budget, processed);
  if (!absorbed) {
    frontier_.heap.clear();
    frontier_.changed.clear();
    frontier_.processed = 0;
    if (!propagate(cg, live_dirty_, budget, frontier_)) {
      // Clean bailout: nothing below mutated the assignment or snapshot.
      ++counters_.slack_bailouts;
      counters_.processed_ranks += frontier_.processed;
      return false;
    }
    processed = frontier_.processed;
    changed_list_.swap(frontier_.changed);
  }
  counters_.processed_ranks += processed;

  // Apply + report in ascending node order — the order the from-scratch
  // path emits — and roll the snapshot forward incrementally: departures
  // blank out, changed nodes take their propagated color, everyone else is
  // untouched (their greedy color provably equals the snapshot).
  std::sort(changed_list_.begin(), changed_list_.end());
  for (net::NodeId v : changed_list_) {
    const net::Color fresh = event_colors_[v];
    assignment.set_color(v, fresh);
    report.changes.push_back(core::Recode{v, snapshot_color(v), fresh});
    last_colors_[v] = fresh;
  }
  for (net::NodeId v : dirty_)
    if (!net.contains(v) && v < last_colors_.size())
      last_colors_[v] = net::kNoColor;
  last_revision_ = cg.revision();
  return true;
}

bool BbbStrategy::propagate(const net::ConflictGraph& cg,
                            std::span<const net::NodeId> seeds,
                            std::size_t budget, Frontier& frontier) {
  const auto heap_greater = [](const std::pair<std::uint32_t, net::NodeId>& a,
                               const std::pair<std::uint32_t, net::NodeId>& b) {
    return a > b;
  };
  auto& heap = frontier.heap;
  heap.clear();
  for (net::NodeId v : seeds) heap.emplace_back(orderer_.rank(v), v);
  std::make_heap(heap.begin(), heap.end(), heap_greater);

  // Pops come out in non-decreasing rank (pushes only ever target ranks past
  // the node being processed), so when a node recomputes its lowest-free
  // color every earlier-ranked neighbor's color is already final.
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), heap_greater);
    const auto [ru, u] = heap.back();
    heap.pop_back();
    if (seen_epoch_[u] == epoch_) continue;
    if (frontier.processed == budget) return false;
    ++frontier.processed;
    seen_epoch_[u] = epoch_;

    const auto neighbors = cg.neighbors(u);
    frontier.scratch.reset();
    for (net::NodeId w : neighbors) {
      if (orderer_.rank(w) >= ru) continue;  // kNoRank sorts past every rank
      const net::Color c = event_color(w);
      if (c != net::kNoColor) frontier.scratch.mark(c);
    }
    const net::Color fresh = frontier.scratch.lowest_free();
    event_colors_[u] = fresh;
    event_color_epoch_[u] = epoch_;
    if (fresh == snapshot_color(u)) continue;

    frontier.changed.push_back(u);
    for (net::NodeId w : neighbors) {
      const std::uint32_t rw = orderer_.rank(w);
      if (rw != DegeneracyOrderer::kNoRank && rw > ru &&
          seen_epoch_[w] != epoch_) {
        heap.emplace_back(rw, w);
        std::push_heap(heap.begin(), heap.end(), heap_greater);
      }
    }
  }
  return true;
}

bool BbbStrategy::parallel_propagate(const net::ConflictGraph& cg,
                                     std::size_t budget,
                                     std::size_t& processed) {
  // The closure walk caps at the budget: within the cap, the serial pass
  // could pop at most |closure| ≤ budget nodes, so it can never hit its
  // slack bailout — parallel and serial take the same decisions everywhere.
  if (!components_.decompose(cg, orderer_.rank_index(), live_dirty_, budget) ||
      components_.count() < 2) {
    ++counters_.parallel_demotions;
    return false;
  }
  const std::size_t count = components_.count();
  ensure_pool();
  if (comp_frontiers_.size() < count) comp_frontiers_.resize(count);
  // Shared state discipline inside the fan-out: the epoch arrays are
  // pre-sized (above) and each component writes only its own members' id
  // slots; ranks, conflict rows, and the snapshot are read-only.  The
  // parallel_for join publishes every write before the merge below.
  pool_->parallel_for(count, [&](std::size_t c) {
    Frontier& frontier = comp_frontiers_[c];
    frontier.heap.clear();
    frontier.changed.clear();
    frontier.processed = 0;
    const bool within = propagate(cg, components_.seeds(c), budget, frontier);
    MINIM_REQUIRE(within, "parallel recolor: component exceeded the batch budget");
  });
  processed = 0;
  for (std::size_t c = 0; c < count; ++c) {
    const Frontier& frontier = comp_frontiers_[c];
    processed += frontier.processed;
    changed_list_.insert(changed_list_.end(), frontier.changed.begin(),
                         frontier.changed.end());
  }
  ++counters_.parallel_events;
  counters_.parallel_components += count;
  return true;
}

std::size_t BbbStrategy::resolved_recolor_threads() const {
  if (params_.recolor_threads != 0) return params_.recolor_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void BbbStrategy::ensure_pool() {
  if (pool_) return;
  const std::size_t threads = resolved_recolor_threads();
  pool_ = std::make_unique<util::ThreadPool>(
      std::max<std::size_t>(1, threads - 1));
}

core::RecodeReport BbbStrategy::global_recolor(const net::AdhocNetwork& net,
                                               net::CodeAssignment& assignment,
                                               core::EventType event,
                                               net::NodeId subject,
                                               std::size_t batch_events,
                                               std::span<const net::NodeId> joiners,
                                               std::span<const net::NodeId> reborn) {
  core::RecodeReport report;
  report.event = event;
  report.subject = subject;
  counters_.events += batch_events;

  // Rank-bounded mode never materializes the live node set on the absorbed
  // path — that enumeration is the O(n) it exists to remove.
  const bool bounded_mode = params_.bounded_propagation &&
                            params_.incremental &&
                            order_ == ColoringOrder::kSmallestLast;
  if (bounded_mode &&
      bounded_recolor(net, assignment, report, batch_events, joiners, reborn)) {
    counters_.bounded_events += batch_events;
    finalize_report(net, assignment, report);
    return report;
  }

  net.nodes(nodes_);
  const std::vector<net::NodeId>& nodes = nodes_;
  if (!bounded_mode && params_.incremental && order_ != ColoringOrder::kDSatur &&
      incremental_recolor(net, assignment, nodes, report)) {
    finalize_report(net, assignment, report);
    return report;
  }

  // From-scratch recolor; remember the previous assignment to count changes.
  old_colors_.clear();
  old_colors_.reserve(nodes.size());
  for (net::NodeId v : nodes) old_colors_.push_back(assignment.color(v));

  if (order_ == ColoringOrder::kDSatur) {
    color_network(net, order_, assignment);
    last_net_ = nullptr;  // DSATUR's dynamic order seeds no incremental state
  } else {
    for (net::NodeId v : nodes) assignment.clear(v);
    const std::vector<net::NodeId>& sequence = sequence_for(net, nodes);
    if (bounded_mode) {
      orderer_.rebuild_ranks(net, sequence);
      ++counters_.full_events;
      counters_.full_ranks += sequence.size();
    }
    greedy_color_in_sequence(net, sequence, assignment);
    snapshot(net, sequence, assignment);
  }

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const net::Color fresh = assignment.color(nodes[i]);
    if (fresh != old_colors_[i])
      report.changes.push_back(core::Recode{nodes[i], old_colors_[i], fresh});
  }
  finalize_report(net, assignment, report);
  return report;
}

core::RecodeReport BbbStrategy::on_join(const net::AdhocNetwork& net,
                                        net::CodeAssignment& assignment, net::NodeId n) {
  return global_recolor(net, assignment, core::EventType::kJoin, n);
}

core::RecodeReport BbbStrategy::on_leave(const net::AdhocNetwork& net,
                                         net::CodeAssignment& assignment,
                                         net::NodeId departed) {
  return global_recolor(net, assignment, core::EventType::kLeave, departed);
}

core::RecodeReport BbbStrategy::on_move(const net::AdhocNetwork& net,
                                        net::CodeAssignment& assignment, net::NodeId n) {
  return global_recolor(net, assignment, core::EventType::kMove, n);
}

core::RecodeReport BbbStrategy::on_power_change(const net::AdhocNetwork& net,
                                                net::CodeAssignment& assignment,
                                                net::NodeId n, double old_range) {
  const double new_range = net.config(n).range;
  const core::EventType event = new_range > old_range ? core::EventType::kPowerIncrease
                                                      : core::EventType::kPowerDecrease;
  return global_recolor(net, assignment, event, n);
}

core::RecodeReport BbbStrategy::on_batch(const net::AdhocNetwork& net,
                                         net::CodeAssignment& assignment,
                                         const core::BatchRepairContext& ctx) {
  MINIM_REQUIRE(!ctx.events.empty(), "BBB: on_batch requires at least one event");
  // A reborn id is a departure of its previous occupant followed by a fresh
  // join reusing the id.  Blank the per-id snapshot state exactly as the
  // sequential leave would have, so the new occupant does not inherit the
  // previous one's color or order position.
  for (net::NodeId v : ctx.reborn) {
    if (v < last_colors_.size()) last_colors_[v] = net::kNoColor;
    if (v < last_pos_.size()) last_pos_[v] = kNoPos;
  }
  const core::BatchedEvent& last = ctx.events.back();
  return global_recolor(net, assignment, last.event, last.subject,
                        ctx.events.size(), ctx.joiners, ctx.reborn);
}

}  // namespace minim::strategies
