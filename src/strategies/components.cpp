#include "strategies/components.hpp"

#include <algorithm>
#include <utility>

namespace minim::strategies {

std::uint32_t DirtyComponents::visit(net::NodeId v) {
  if (visit_epoch_[v] == epoch_) return local_of_[v];
  visit_epoch_[v] = epoch_;
  const auto idx = static_cast<std::uint32_t>(members_.size());
  local_of_[v] = idx;
  members_.push_back(v);
  parent_.push_back(idx);
  uf_size_.push_back(1);
  stack_.push_back(v);
  return idx;
}

std::uint32_t DirtyComponents::find(std::uint32_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool DirtyComponents::decompose(const net::ConflictGraph& cg,
                                std::span<const std::uint32_t> rank,
                                std::span<const net::NodeId> seeds,
                                std::size_t node_cap) {
  component_count_ = 0;
  members_.clear();
  parent_.clear();
  uf_size_.clear();
  stack_.clear();

  const auto rank_of = [&rank](net::NodeId v) {
    return v < rank.size() ? rank[v] : kUnranked;
  };

  // Visit arrays cover every id a conflict row can name, plus any seed id
  // past the graph's bound (a seed with no row simply has no edges to walk).
  std::size_t bound = cg.id_bound();
  for (net::NodeId s : seeds)
    bound = std::max<std::size_t>(bound, static_cast<std::size_t>(s) + 1);
  if (visit_epoch_.size() < bound) {
    visit_epoch_.resize(bound, 0);
    local_of_.resize(bound, 0);
  }
  if (++epoch_ == 0) {  // stamp wraparound: invalidate all slots
    std::fill(visit_epoch_.begin(), visit_epoch_.end(), 0);
    epoch_ = 1;
  }

  for (net::NodeId s : seeds) {
    if (rank_of(s) == kUnranked) continue;  // departed/unranked: no frontier
    visit(s);
    if (members_.size() > node_cap) return false;
  }

  // Fused BFS closure + union-find.  Every intra-closure conflict edge is
  // crossed from its lower-rank endpoint (the closure is forward-closed), so
  // uniting along walked edges unites along *all* edges of G[R]: the
  // components are exactly the connected components of the restricted graph.
  while (!stack_.empty()) {
    const net::NodeId u = stack_.back();
    stack_.pop_back();
    const std::uint32_t lu = local_of_[u];
    const std::uint32_t ru = rank_of(u);
    if (u >= cg.id_bound()) continue;
    for (net::NodeId w : cg.neighbors(u)) {
      const std::uint32_t rw = rank_of(w);
      if (rw == kUnranked || rw <= ru) continue;  // earlier rank: read-only
      const std::uint32_t lw = visit(w);
      if (members_.size() > node_cap) return false;
      // Union by size.
      std::uint32_t a = find(lu);
      std::uint32_t b = find(lw);
      if (a != b) {
        if (uf_size_[a] < uf_size_[b]) std::swap(a, b);
        parent_[b] = a;
        uf_size_[a] += uf_size_[b];
      }
    }
  }

  // Group the closure by union-find root into dense component ids, numbered
  // by first appearance in discovery order (deterministic).
  const auto n = static_cast<std::uint32_t>(members_.size());
  comp_of_local_.resize(n);
  root_comp_.assign(n, kUnranked);
  member_offsets_.assign(1, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t root = find(i);
    if (root_comp_[root] == kUnranked) {
      root_comp_[root] = static_cast<std::uint32_t>(component_count_++);
      member_offsets_.push_back(0);
    }
    const std::uint32_t c = root_comp_[root];
    comp_of_local_[i] = c;
    ++member_offsets_[c + 1];
  }
  for (std::size_t c = 0; c < component_count_; ++c)
    member_offsets_[c + 1] += member_offsets_[c];

  members_flat_.resize(n);
  cursor_.assign(member_offsets_.begin(), member_offsets_.end() - 1);
  for (std::uint32_t i = 0; i < n; ++i)
    members_flat_[cursor_[comp_of_local_[i]]++] = members_[i];

  // Scatter the seeds per component, preserving the caller's seed order.
  seed_offsets_.assign(component_count_ + 1, 0);
  for (net::NodeId s : seeds)
    if (rank_of(s) != kUnranked) ++seed_offsets_[comp_of_local_[local_of_[s]] + 1];
  for (std::size_t c = 0; c < component_count_; ++c)
    seed_offsets_[c + 1] += seed_offsets_[c];
  seeds_flat_.resize(seed_offsets_[component_count_]);
  cursor_.assign(seed_offsets_.begin(), seed_offsets_.end() - 1);
  for (net::NodeId s : seeds)
    if (rank_of(s) != kUnranked)
      seeds_flat_[cursor_[comp_of_local_[local_of_[s]]]++] = s;
  return true;
}

}  // namespace minim::strategies
