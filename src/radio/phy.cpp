#include "radio/phy.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace minim::radio {

namespace {

/// Amplitude gain of the u -> v link under the configured path-loss law.
double link_gain(const PhyParams& params, util::Vec2 from, util::Vec2 to) {
  if (params.path_loss_exponent <= 0.0) return 1.0;
  const double d = std::max(util::distance(from, to), params.reference_distance);
  return std::pow(params.reference_distance / d, params.path_loss_exponent / 2.0);
}

/// Adds `gain * other` into `accumulator`.
void superpose_scaled(Signal& accumulator, const Signal& other, double gain) {
  MINIM_REQUIRE(accumulator.size() == other.size(), "superpose: length mismatch");
  for (std::size_t i = 0; i < other.size(); ++i) accumulator[i] += gain * other[i];
}

}  // namespace

BroadcastReport simulate_transmitters(const net::AdhocNetwork& net,
                                      const net::CodeAssignment& assignment,
                                      const std::vector<net::NodeId>& transmitters,
                                      const PhyParams& params, util::Rng& rng) {
  BroadcastReport report;
  if (transmitters.empty()) return report;

  net::Color max_color = net::kNoColor;
  for (net::NodeId t : transmitters) {
    MINIM_REQUIRE(assignment.has_color(t), "transmitter has no code assigned");
    max_color = std::max(max_color, assignment.color(t));
  }
  const WalshCodeBook book = WalshCodeBook::for_colors(max_color);

  // Generate payloads and spread them once per transmitter.
  std::vector<Bits> payload(transmitters.size());
  std::vector<Signal> waveform(transmitters.size());
  for (std::size_t i = 0; i < transmitters.size(); ++i) {
    payload[i] = random_bits(params.packet_bits, rng);
    waveform[i] = spread(payload[i], book.code(assignment.color(transmitters[i])));
  }

  // Each receiver hears the superposition of in-range transmitters.
  for (net::NodeId v : net.nodes()) {
    Signal received;
    bool any = false;
    std::vector<std::size_t> senders;  // indices into `transmitters`
    for (std::size_t i = 0; i < transmitters.size(); ++i) {
      const net::NodeId u = transmitters[i];
      // A node always hears its own outgoing transmission (the primary
      // collision mechanism of CA1); others are heard iff in range.
      const bool audible = (u == v) || net.graph().has_edge(u, v);
      if (!audible) continue;
      if (!any) {
        received.assign(waveform[i].size(), 0.0);
        any = true;
      }
      // Self-interference arrives at full amplitude; real links attenuate
      // per the path-loss law (unit gain when disabled).
      const double gain =
          u == v ? 1.0
                 : link_gain(params, net.config(u).position, net.config(v).position);
      superpose_scaled(received, waveform[i], gain);
      if (u != v) senders.push_back(i);
    }
    if (!any || senders.empty()) continue;
    if (params.noise_sigma > 0.0) add_awgn(received, params.noise_sigma, rng);

    for (std::size_t i : senders) {
      const Bits decoded = despread(received, book.code(assignment.color(transmitters[i])));
      LinkReport link;
      link.transmitter = transmitters[i];
      link.receiver = v;
      link.bits = params.packet_bits;
      link.bit_errors = hamming_distance(decoded, payload[i]);
      report.total_bits += link.bits;
      report.total_bit_errors += link.bit_errors;
      if (link.bit_errors > 0) ++report.garbled_links;
      report.links.push_back(link);
    }
  }
  return report;
}

BroadcastReport simulate_all_transmit(const net::AdhocNetwork& net,
                                      const net::CodeAssignment& assignment,
                                      const PhyParams& params, util::Rng& rng) {
  return simulate_transmitters(net, assignment, net.nodes(), params, rng);
}

}  // namespace minim::radio
