#pragma once

#include <cstdint>
#include <vector>

#include "radio/walsh.hpp"
#include "util/rng.hpp"

/// \file spread.hpp
/// \brief Direct-sequence spreading / despreading over Walsh codes.
///
/// A packet is a bit vector; each bit is BPSK-modulated (+1/-1) and
/// multiplied chip-wise by the transmitter's Walsh code.  A synchronized
/// correlation receiver despreads by correlating each symbol period against
/// the wanted code and slicing the sign.  With orthogonal codes the decision
/// statistic for interference from any *different* code is exactly zero —
/// the mechanism behind the paper's "CDMA eliminates collisions" premise —
/// while a *same-code* interferer corrupts the statistic (the collision CA1
/// and CA2 exist to prevent).

namespace minim::radio {

/// Baseband sample stream (superposition of chip streams, so not just ±1).
using Signal = std::vector<double>;

/// Packet payload as bits.
using Bits = std::vector<std::uint8_t>;

/// Random payload of `length` bits.
Bits random_bits(std::size_t length, util::Rng& rng);

/// Spreads `bits` with `code`: output length = bits.size() * code.size().
Signal spread(const Bits& bits, const WalshCode& code);

/// Despreads `signal` with `code`.  Each symbol period is correlated against
/// the code; the sign decides the bit (exact zero — a wiped-out symbol —
/// decodes as 0 by convention, which is wrong half the time, as a real
/// garbled link would be).
Bits despread(const Signal& signal, const WalshCode& code);

/// Adds `other` into `accumulator` sample-wise (chip-synchronous channel
/// superposition).  Signals must have equal length.
void superpose(Signal& accumulator, const Signal& other);

/// Adds white Gaussian noise of standard deviation `sigma` (Box–Muller).
void add_awgn(Signal& signal, double sigma, util::Rng& rng);

/// Number of positions where `a` and `b` differ (requires equal sizes).
std::size_t hamming_distance(const Bits& a, const Bits& b);

}  // namespace minim::radio
