#pragma once

#include <cstdint>
#include <vector>

/// \file walsh.hpp
/// \brief Walsh–Hadamard orthogonal code generation.
///
/// The paper's model assumes "orthogonal codes": distinct codes separate
/// perfectly at a synchronized receiver, identical codes collide.  Walsh
/// codes (rows of the Sylvester Hadamard matrix H_{2^k}) are the canonical
/// realization.  Code index c (the paper's color) maps to row c; row 0 (all
/// ones) is reserved as a pilot so colors stay 1-based.

namespace minim::radio {

/// Chips are BPSK symbols: +1 / -1.
using Chip = std::int8_t;

/// One spreading code: a row of the Hadamard matrix.
using WalshCode = std::vector<Chip>;

/// Code book of length-`length` Walsh codes (length must be a power of two).
class WalshCodeBook {
 public:
  /// Builds H_length by Sylvester doubling.  `length` must be a power of two
  /// and >= 2.
  explicit WalshCodeBook(std::size_t length);

  /// Smallest valid code book that can serve `max_color` colors
  /// (row indices 1..max_color all exist).
  static WalshCodeBook for_colors(std::uint32_t max_color);

  std::size_t length() const { return length_; }
  /// Number of usable data codes (rows 1..size-1; row 0 is the pilot).
  std::size_t capacity() const { return length_ - 1; }

  /// Row `index` (0 = pilot).  Requires index < length().
  const WalshCode& code(std::size_t index) const;

  /// Signed correlation of two equal-length chip vectors (dot product).
  /// Distinct rows correlate to 0; equal rows to length().
  static std::int64_t correlate(const WalshCode& a, const WalshCode& b);

 private:
  std::size_t length_;
  std::vector<WalshCode> rows_;
};

}  // namespace minim::radio
