#include "radio/spread.hpp"

#include <cmath>
#include <numbers>

#include "util/require.hpp"

namespace minim::radio {

Bits random_bits(std::size_t length, util::Rng& rng) {
  Bits bits(length);
  for (auto& b : bits) b = rng.chance(0.5) ? 1 : 0;
  return bits;
}

Signal spread(const Bits& bits, const WalshCode& code) {
  Signal signal;
  signal.reserve(bits.size() * code.size());
  for (std::uint8_t bit : bits) {
    const double symbol = bit ? 1.0 : -1.0;
    for (Chip chip : code) signal.push_back(symbol * static_cast<double>(chip));
  }
  return signal;
}

Bits despread(const Signal& signal, const WalshCode& code) {
  MINIM_REQUIRE(!code.empty(), "despread: empty code");
  MINIM_REQUIRE(signal.size() % code.size() == 0,
                "despread: signal is not a whole number of symbols");
  const std::size_t symbols = signal.size() / code.size();
  Bits bits(symbols);
  for (std::size_t s = 0; s < symbols; ++s) {
    double statistic = 0.0;
    const double* samples = signal.data() + s * code.size();
    for (std::size_t i = 0; i < code.size(); ++i)
      statistic += samples[i] * static_cast<double>(code[i]);
    bits[s] = statistic > 0.0 ? 1 : 0;
  }
  return bits;
}

void superpose(Signal& accumulator, const Signal& other) {
  MINIM_REQUIRE(accumulator.size() == other.size(), "superpose: length mismatch");
  for (std::size_t i = 0; i < other.size(); ++i) accumulator[i] += other[i];
}

void add_awgn(Signal& signal, double sigma, util::Rng& rng) {
  MINIM_REQUIRE(sigma >= 0.0, "noise sigma must be non-negative");
  if (sigma == 0.0) return;
  // Box–Muller, two samples per draw.
  std::size_t i = 0;
  while (i < signal.size()) {
    const double u1 = 1.0 - rng.uniform01();  // (0, 1]
    const double u2 = rng.uniform01();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    signal[i++] += sigma * radius * std::cos(angle);
    if (i < signal.size()) signal[i++] += sigma * radius * std::sin(angle);
  }
}

std::size_t hamming_distance(const Bits& a, const Bits& b) {
  MINIM_REQUIRE(a.size() == b.size(), "hamming_distance: length mismatch");
  std::size_t distance = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) ++distance;
  return distance;
}

}  // namespace minim::radio
