#pragma once

#include <vector>

#include "net/assignment.hpp"
#include "net/network.hpp"
#include "radio/spread.hpp"
#include "radio/walsh.hpp"
#include "util/rng.hpp"

/// \file phy.hpp
/// \brief Link-level CDMA simulation over the ad-hoc network model.
///
/// Ties the graph model back to physics: every transmitter simultaneously
/// sends a random packet spread with the Walsh code of its assigned color;
/// every receiver observes the chip-synchronous superposition of all
/// transmitters whose range covers it, then despreads each wanted link.
///
/// With a CA1/CA2-valid assignment every link decodes with zero bit errors
/// (orthogonality cancels all interference).  A primary collision (CA1) or
/// hidden collision (CA2) puts two same-code signals onto one receiver and
/// garbles the link — the exact failure the recoding strategies prevent.

namespace minim::radio {

/// Outcome of decoding one directed link u -> v.
struct LinkReport {
  net::NodeId transmitter = net::kInvalidNode;
  net::NodeId receiver = net::kInvalidNode;
  std::size_t bit_errors = 0;
  std::size_t bits = 0;

  double bit_error_rate() const {
    return bits == 0 ? 0.0 : static_cast<double>(bit_errors) / static_cast<double>(bits);
  }
};

struct BroadcastReport {
  std::vector<LinkReport> links;
  std::size_t garbled_links = 0;   ///< links with >= 1 bit error
  std::size_t total_bit_errors = 0;
  std::size_t total_bits = 0;

  double link_error_rate() const {
    return links.empty() ? 0.0
                         : static_cast<double>(garbled_links) /
                               static_cast<double>(links.size());
  }
};

struct PhyParams {
  std::size_t packet_bits = 64;  ///< payload length per transmitter
  double noise_sigma = 0.0;      ///< AWGN level (0 = noiseless, the paper's model)

  /// Path-loss exponent alpha: received amplitude = (d0 / max(d, d0))^(alpha/2)
  /// with reference distance `d0`.  0 disables path loss (the paper's
  /// unit-gain model).  Orthogonal links stay clean under any gains (the
  /// correlator cancels other codes exactly); for same-code collisions the
  /// gains decide which link survives — the classic near-far capture effect.
  double path_loss_exponent = 0.0;
  double reference_distance = 1.0;
};

/// Simulates one slot in which *every* node transmits simultaneously, and
/// every edge u -> v is decoded at v with u's code.  Nodes must all be
/// colored; the code book is sized to the maximum color in use.
BroadcastReport simulate_all_transmit(const net::AdhocNetwork& net,
                                      const net::CodeAssignment& assignment,
                                      const PhyParams& params, util::Rng& rng);

/// Simulates one slot in which only `transmitters` send; every edge from a
/// transmitter is decoded at its receiver.
BroadcastReport simulate_transmitters(const net::AdhocNetwork& net,
                                      const net::CodeAssignment& assignment,
                                      const std::vector<net::NodeId>& transmitters,
                                      const PhyParams& params, util::Rng& rng);

}  // namespace minim::radio
