#include "radio/walsh.hpp"

#include "util/require.hpp"

namespace minim::radio {

namespace {

bool is_power_of_two(std::size_t x) { return x >= 1 && (x & (x - 1)) == 0; }

}  // namespace

WalshCodeBook::WalshCodeBook(std::size_t length) : length_(length) {
  MINIM_REQUIRE(is_power_of_two(length) && length >= 2,
                "Walsh code length must be a power of two >= 2");
  // Sylvester construction: H_{2n} = [[H_n, H_n], [H_n, -H_n]].
  rows_.assign(length, WalshCode(length, 1));
  for (std::size_t block = 1; block < length; block <<= 1) {
    for (std::size_t r = 0; r < block; ++r) {
      for (std::size_t c = 0; c < block; ++c) {
        const Chip v = rows_[r][c];
        rows_[r][c + block] = v;
        rows_[r + block][c] = v;
        rows_[r + block][c + block] = static_cast<Chip>(-v);
      }
    }
  }
}

WalshCodeBook WalshCodeBook::for_colors(std::uint32_t max_color) {
  std::size_t length = 2;
  while (length - 1 < max_color) length <<= 1;
  return WalshCodeBook(length);
}

const WalshCode& WalshCodeBook::code(std::size_t index) const {
  MINIM_REQUIRE(index < length_, "Walsh code index out of range");
  return rows_[index];
}

std::int64_t WalshCodeBook::correlate(const WalshCode& a, const WalshCode& b) {
  MINIM_REQUIRE(a.size() == b.size(), "correlate: length mismatch");
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    sum += static_cast<std::int64_t>(a[i]) * static_cast<std::int64_t>(b[i]);
  return sum;
}

}  // namespace minim::radio
