// Reproduces Figure 10 (Simulation Results - Node Join) of
// "Minimal CDMA Recoding Strategies in Power-Controlled Ad-Hoc Wireless
// Networks" (Gupta, 2001).
//
// Experiment (paper Section 5.1): N nodes consecutively join a 100x100
// field; positions uniform, ranges uniform in (minr, maxr).  Metrics after
// all joins: maximum color index assigned and total number of recodings.
// Sub-figures:
//   (a) max color vs N                (minr=20.5, maxr=30.5) - Minim/CP/BBB
//   (b) #recodings vs N               - Minim/CP/BBB
//   (c) #recodings vs N               - Minim/CP (readable zoom of (b))
//   (d) max color vs avg range        (N=100, maxr-minr=5)   - Minim/CP/BBB
//   (e) #recodings vs avg range       - Minim/CP/BBB
//   (f) #recodings vs avg range       - Minim/CP
//
// Every point is the mean over --runs (default 100) seeded Monte-Carlo runs;
// all strategies replay identical workloads (paired comparison).
//
// With --orchestrate=K each sweep runs as K self-spawned worker processes
// whose merged result is bit-identical to the in-process run (see
// bench_util.hpp for the orchestration flag set).

#include <iostream>

#include "../bench/bench_util.hpp"
#include "sim/sweeps.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace minim;
  const util::Options options(argc, argv);
  // A fleet agent serves units for a remote driver; nothing else in this
  // harness applies to that invocation.
  if (bench::is_fleet_agent(options)) return bench::run_fleet_agent(options);

  const std::vector<double> ns{40, 50, 60, 70, 80, 90, 100, 110, 120};
  const std::vector<double> avg_ranges{7.5, 17.5, 27.5, 37.5, 47.5, 57.5, 67.5};

  const auto sweep = bench::sweep_options_from(options, {"minim", "cp", "bbb"});
  const sim::Experiment vs_n(sim::grid_join_vs_n(ns, sweep));
  const sim::Experiment vs_range(sim::grid_join_vs_avg_range(avg_ranges, sweep));
  const sim::ExperimentOptions run = sim::experiment_options_from(sweep);

  if (bench::is_worker(options)) {
    if (bench::run_worker_unit(options, vs_n, run, "fig10-n")) return 0;
    if (bench::run_worker_unit(options, vs_range, run, "fig10-range")) return 0;
    std::cerr << "unknown --unit-tag for fig10\n";
    return 2;
  }

  std::cout << "=== Figure 10: node join ===\n"
            << "N joins on 100x100 field; metrics after the full join "
               "sequence; mean +- 95% CI over runs.\n\n";

  {
    const auto points = sim::sweep_points_from(
        bench::run_experiment_cli(options, vs_n, run, "fig10-n"),
        /*delta_metrics=*/false);
    bench::print_series("Fig 10(a): max color index vs N (minr=20.5, maxr=30.5)",
                        "N", points, bench::Metric::kColor, options, "fig10a");
    bench::print_series("Fig 10(b): total recodings vs N", "N", points,
                        bench::Metric::kRecodings, options, "fig10b");
    // (c) is the minim/cp sub-series of the same sweep (strategy lanes are
    // independent) — filtered, not re-simulated.
    const auto distributed = bench::filter_strategies(points, {"minim", "cp"});
    bench::print_series("Fig 10(c): total recodings vs N (distributed only)", "N",
                        distributed, bench::Metric::kRecodings, options, "fig10c");
  }
  {
    const auto points = sim::sweep_points_from(
        bench::run_experiment_cli(options, vs_range, run, "fig10-range"),
        /*delta_metrics=*/false);
    bench::print_series(
        "Fig 10(d): max color index vs avg range (N=100, maxr-minr=5)", "avgR",
        points, bench::Metric::kColor, options, "fig10d");
    bench::print_series("Fig 10(e): total recodings vs avg range", "avgR", points,
                        bench::Metric::kRecodings, options, "fig10e");
    const auto distributed = bench::filter_strategies(points, {"minim", "cp"});
    bench::print_series("Fig 10(f): total recodings vs avg range (distributed only)",
                        "avgR", distributed, bench::Metric::kRecodings, options,
                        "fig10f");
  }
  return 0;
}
