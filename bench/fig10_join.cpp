// Reproduces Figure 10 (Simulation Results - Node Join) of
// "Minimal CDMA Recoding Strategies in Power-Controlled Ad-Hoc Wireless
// Networks" (Gupta, 2001).
//
// Experiment (paper Section 5.1): N nodes consecutively join a 100x100
// field; positions uniform, ranges uniform in (minr, maxr).  Metrics after
// all joins: maximum color index assigned and total number of recodings.
// Sub-figures:
//   (a) max color vs N                (minr=20.5, maxr=30.5) - Minim/CP/BBB
//   (b) #recodings vs N               - Minim/CP/BBB
//   (c) #recodings vs N               - Minim/CP (readable zoom of (b))
//   (d) max color vs avg range        (N=100, maxr-minr=5)   - Minim/CP/BBB
//   (e) #recodings vs avg range       - Minim/CP/BBB
//   (f) #recodings vs avg range       - Minim/CP
//
// Every point is the mean over --runs (default 100) seeded Monte-Carlo runs;
// all strategies replay identical workloads (paired comparison).

#include <iostream>

#include "../bench/bench_util.hpp"
#include "sim/sweeps.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace minim;
  const util::Options options(argc, argv);

  std::cout << "=== Figure 10: node join ===\n"
            << "N joins on 100x100 field; metrics after the full join "
               "sequence; mean +- 95% CI over runs.\n\n";

  const std::vector<double> ns{40, 50, 60, 70, 80, 90, 100, 110, 120};
  const std::vector<double> avg_ranges{7.5, 17.5, 27.5, 37.5, 47.5, 57.5, 67.5};

  {
    auto sweep = bench::sweep_options_from(options, {"minim", "cp", "bbb"});
    const auto points = sim::sweep_join_vs_n(ns, sweep);
    bench::print_series("Fig 10(a): max color index vs N (minr=20.5, maxr=30.5)",
                        "N", points, bench::Metric::kColor, options, "fig10a");
    bench::print_series("Fig 10(b): total recodings vs N", "N", points,
                        bench::Metric::kRecodings, options, "fig10b");
    // (c) is the minim/cp sub-series of the same sweep (strategy lanes are
    // independent) — filtered, not re-simulated.
    const auto distributed = bench::filter_strategies(points, {"minim", "cp"});
    bench::print_series("Fig 10(c): total recodings vs N (distributed only)", "N",
                        distributed, bench::Metric::kRecodings, options, "fig10c");
  }
  {
    auto sweep = bench::sweep_options_from(options, {"minim", "cp", "bbb"});
    const auto points = sim::sweep_join_vs_avg_range(avg_ranges, sweep);
    bench::print_series(
        "Fig 10(d): max color index vs avg range (N=100, maxr-minr=5)", "avgR",
        points, bench::Metric::kColor, options, "fig10d");
    bench::print_series("Fig 10(e): total recodings vs avg range", "avgR", points,
                        bench::Metric::kRecodings, options, "fig10e");
    const auto distributed = bench::filter_strategies(points, {"minim", "cp"});
    bench::print_series("Fig 10(f): total recodings vs avg range (distributed only)",
                        "avgR", distributed, bench::Metric::kRecodings, options,
                        "fig10f");
  }
  return 0;
}
