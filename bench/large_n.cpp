// Large-N harness: proves the per-event hot path at 10³→10⁶ nodes.
//
// Each stage builds an n-node network by replaying a constant-density join
// workload (field scaled so the mean degree stays fixed; placement uniform,
// clustered, or poisson-disk — see sim::make_large_n_params) through a
// *local* strategy, and records
//   * wall-clock and events/s for the join phase,
//   * the engine's heap footprint in bytes/node (bench::memory_profile),
//   * the process peak RSS (VmHWM) after the stage.
// Stages run in ascending n, so the monotone RSS high-water mark after each
// stage is attributable to it.
//
// Modes:
//   default            run --ns stages and print the table
//   --append           also append a labeled entry (one measurement per
//                      stage, "bench.large_n.<placement>.<n>") to --out
//   --smoke            single capped stage (--smoke-n, default 10000) — the
//                      CI-sized run
//   --check-rss[=F]    compare each stage's peak RSS against the most
//                      recent trajectory entry covering it; exit 1 when any
//                      exceeds baseline * --rss-factor.  The CI memory gate
//                      (Release only, alongside perf_trajectory --check).
//   --churn            after each join stage, run a continuous-time
//                      leave/move/power churn phase *on* the n-node network
//                      (sim::run_churn seeded with `initial_nodes = n`,
//                      arrival rate balancing the mean lifetime so the
//                      population holds near n) — the scenario family beyond
//                      join-only, at the same constant-density placement.
//                      Churn measurements append as
//                      "bench.large_n.<placement>.<n>.churn".
//
// Options:
//   --ns=...           stage sizes (default 1000,10000,100000)
//   --strategy=NAME    recoding strategy (default minim; BBB's global
//                      recolor is O(V+E) per event — not a large-N citizen)
//   --placement=P      uniform | clustered | poisson-disk (default clustered)
//   --mean-degree=D    target mean out-degree (default 12)
//   --seed=S           master seed (default 2001)
//   --label=NAME       entry label for --append (default "large-n")
//   --out=FILE         trajectory path (default BENCH_sweep.json)
//   --rss-factor=X     allowed RSS growth factor for --check-rss (default 1.5)
//   --churn-duration=D churn horizon (default 60 time units)
//   --churn-lifetime=L mean node lifetime (default 600; ~D/L of the
//                      population leaves and is replaced during the phase)
//   --churn-move-rate=M    per-node movement rate (default 0.004)
//   --churn-power-rate=P   per-node power-toggle rate (default 0.002)

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "../bench/bench_util.hpp"
#include "../bench/trajectory.hpp"
#include "sim/churn.hpp"
#include "sim/replay.hpp"
#include "sim/simulation.hpp"
#include "sim/workload.hpp"
#include "strategies/factory.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace minim;

sim::Placement placement_from(const std::string& name) {
  if (name == "uniform") return sim::Placement::kUniform;
  if (name == "clustered") return sim::Placement::kClustered;
  if (name == "poisson-disk") return sim::Placement::kPoissonDisk;
  std::cerr << "unknown placement \"" << name
            << "\" (expected uniform|clustered|poisson-disk)\n";
  std::exit(2);
}

struct StageResult {
  std::size_t n = 0;
  double gen_s = 0.0;     ///< workload generation
  double join_s = 0.0;    ///< event replay (the hot path under test)
  double events_per_s = 0.0;
  double bytes_per_node = 0.0;
  double peak_rss_mb = 0.0;
  net::Color max_color = 0;
};

StageResult run_stage(std::size_t n, sim::Placement placement, double mean_degree,
                      const std::string& strategy_name, std::uint64_t seed) {
  using clock = std::chrono::steady_clock;
  StageResult result;
  result.n = n;

  const sim::WorkloadParams params =
      sim::make_large_n_params(n, mean_degree, placement);
  // Stream keyed by n (not stage index): a --smoke run of one stage
  // reproduces exactly the workload the full run used for that n, so RSS
  // baselines compare like for like.
  util::Rng rng = util::Rng::for_stream(seed, n);
  const auto gen_start = clock::now();
  const sim::Workload workload = sim::make_join_workload(params, rng);
  result.gen_s =
      std::chrono::duration<double>(clock::now() - gen_start).count();

  const auto strategy = strategies::make_strategy(strategy_name);
  sim::Simulation::Params sim_params;
  sim_params.width = workload.width;
  sim_params.height = workload.height;
  sim::Simulation simulation(*strategy, sim_params);

  const auto join_start = clock::now();
  for (const auto& config : workload.joins) simulation.join(config);
  result.join_s =
      std::chrono::duration<double>(clock::now() - join_start).count();
  result.events_per_s =
      result.join_s > 0 ? static_cast<double>(n) / result.join_s : 0.0;

  const bench::MemoryProfile memory = bench::memory_profile(simulation.network());
  result.bytes_per_node = memory.bytes_per_node;
  result.peak_rss_mb =
      static_cast<double>(bench::peak_rss_bytes()) / (1024.0 * 1024.0);
  result.max_color = simulation.max_color();
  return result;
}

// ------------------------------------------------------------- churn stage

struct ChurnStageConfig {
  bool enabled = false;
  double duration = 60.0;
  double mean_lifetime = 600.0;
  double move_rate = 0.004;
  double power_rate = 0.002;
};

struct ChurnStageResult {
  std::size_t n = 0;
  double wall_s = 0.0;          ///< build (n joins) + churn phase
  double events_per_s = 0.0;    ///< all events over the whole stage
  std::size_t churn_events = 0; ///< events beyond the n seed joins
  std::size_t peak_nodes = 0;
  std::size_t final_nodes = 0;
  double peak_rss_mb = 0.0;
  net::Color max_color = 0;
};

/// Runs leave/move/power churn on an n-node constant-density network: the
/// network is seeded to n nodes (same placement family as the join stage),
/// then arrivals at rate n/lifetime keep the population near n while nodes
/// leave, move, and duty-cycle their transmitters.
ChurnStageResult run_churn_stage(std::size_t n, sim::Placement placement,
                                 double mean_degree,
                                 const std::string& strategy_name,
                                 std::uint64_t seed,
                                 const ChurnStageConfig& config) {
  using clock = std::chrono::steady_clock;
  const sim::WorkloadParams params =
      sim::make_large_n_params(n, mean_degree, placement);

  sim::ChurnParams churn;
  churn.duration = config.duration;
  churn.mean_lifetime = config.mean_lifetime;
  churn.arrival_rate = static_cast<double>(n) / config.mean_lifetime;
  churn.move_rate = config.move_rate;
  churn.power_rate = config.power_rate;
  churn.min_range = params.min_range;
  churn.max_range = params.max_range;
  churn.width = params.width;
  churn.height = params.height;
  churn.sample_interval = config.duration / 4.0;
  churn.max_nodes = n + n / 4 + 16;
  churn.initial_nodes = n;
  churn.initial_placement = placement;
  churn.initial_cluster_count = params.cluster_count;
  churn.initial_cluster_sigma = params.cluster_sigma;
  churn.initial_min_separation = params.min_separation;

  const auto strategy = strategies::make_strategy(strategy_name);
  // A stream namespace disjoint from the join stages' (keyed by n).
  util::Rng rng = util::Rng::for_stream(
      seed, static_cast<std::uint64_t>(n) + (std::uint64_t{1} << 32));

  ChurnStageResult result;
  result.n = n;
  const auto start = clock::now();
  const sim::ChurnResult outcome = sim::run_churn(churn, *strategy, rng);
  result.wall_s = std::chrono::duration<double>(clock::now() - start).count();
  result.events_per_s =
      result.wall_s > 0
          ? static_cast<double>(outcome.totals.events) / result.wall_s
          : 0.0;
  result.churn_events = outcome.totals.events > n ? outcome.totals.events - n : 0;
  result.peak_nodes = outcome.peak_nodes;
  result.final_nodes =
      outcome.samples.empty() ? outcome.peak_nodes : outcome.samples.back().nodes;
  result.peak_rss_mb =
      static_cast<double>(bench::peak_rss_bytes()) / (1024.0 * 1024.0);
  result.max_color = outcome.final_max_color;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options options(argc, argv);
  const bool smoke = options.get_bool("smoke", false);
  std::vector<double> ns =
      bench::double_list_from(options, "ns", {1000, 10000, 100000});
  if (smoke)
    ns = {static_cast<double>(options.get_int("smoke-n", 10000))};
  const std::string strategy = options.get("strategy", "minim");
  const sim::Placement placement =
      placement_from(options.get("placement", "clustered"));
  const double mean_degree = options.get_double("mean-degree", 12.0);
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 2001));
  const std::string out_path = options.get("out", "BENCH_sweep.json");
  const bool append = options.get_bool("append", false);
  const bool check_rss = options.has("check-rss");
  const std::string check_path =
      options.get("check-rss", "") == "true" || options.get("check-rss", "").empty()
          ? out_path
          : options.get("check-rss", out_path);
  const double rss_factor = options.get_double("rss-factor", 1.5);
  ChurnStageConfig churn_config;
  churn_config.enabled = options.get_bool("churn", false);
  churn_config.duration = options.get_double("churn-duration", 60.0);
  churn_config.mean_lifetime = options.get_double("churn-lifetime", 600.0);
  churn_config.move_rate = options.get_double("churn-move-rate", 0.004);
  churn_config.power_rate = options.get_double("churn-power-rate", 0.002);

  std::vector<bench::TrajectoryEntry> trajectory =
      bench::load_trajectory(check_rss ? check_path : out_path);
  if (check_rss && trajectory.empty()) {
    std::cerr << "--check-rss: no baseline entries in " << check_path << "\n";
    return 1;
  }
  if (append && trajectory.empty() && !bench::read_file(out_path).empty()) {
    std::cerr << out_path
              << " exists but is not a recognizable trajectory; refusing to "
                 "overwrite it\n";
    return 1;
  }

  std::cout << "=== Large-N join hot path (strategy=" << strategy
            << ", placement=" << sim::to_string(placement)
            << ", mean degree ~" << util::fmt_fixed(mean_degree, 1) << ") ===\n";

  util::TextTable table("stages");
  table.set_header({"n", "gen s", "join s", "events/s", "bytes/node",
                    "peak RSS MB", "max color"});
  std::vector<bench::Measurement> measurements;
  std::vector<StageResult> stages;
  for (const double stage_n : ns) {
    const auto n = static_cast<std::size_t>(stage_n);
    const StageResult stage = run_stage(n, placement, mean_degree, strategy, seed);
    stages.push_back(stage);
    table.add_row({std::to_string(stage.n), util::fmt_fixed(stage.gen_s, 2),
                   util::fmt_fixed(stage.join_s, 2),
                   util::fmt_fixed(stage.events_per_s, 0),
                   util::fmt_fixed(stage.bytes_per_node, 1),
                   util::fmt_fixed(stage.peak_rss_mb, 1),
                   std::to_string(stage.max_color)});
    bench::Measurement m;
    m.name = "bench.large_n." + std::string(sim::to_string(placement)) + "." +
             std::to_string(stage.n);
    m.wall_s = stage.join_s;
    m.peak_rss_mb = stage.peak_rss_mb;
    m.bytes_per_node = stage.bytes_per_node;
    measurements.push_back(std::move(m));
  }
  std::cout << table.render() << "\n";

  if (churn_config.enabled) {
    std::cout << "=== Churn phase (duration "
              << util::fmt_fixed(churn_config.duration, 0) << ", lifetime "
              << util::fmt_fixed(churn_config.mean_lifetime, 0)
              << ": leaves/arrivals hold the population near n) ===\n";
    util::TextTable churn_table("churn stages");
    churn_table.set_header({"n", "wall s", "events/s", "churn events",
                            "peak n", "final n", "peak RSS MB", "max color"});
    for (const double stage_n : ns) {
      const auto n = static_cast<std::size_t>(stage_n);
      const ChurnStageResult stage = run_churn_stage(
          n, placement, mean_degree, strategy, seed, churn_config);
      churn_table.add_row({std::to_string(stage.n),
                           util::fmt_fixed(stage.wall_s, 2),
                           util::fmt_fixed(stage.events_per_s, 0),
                           std::to_string(stage.churn_events),
                           std::to_string(stage.peak_nodes),
                           std::to_string(stage.final_nodes),
                           util::fmt_fixed(stage.peak_rss_mb, 1),
                           std::to_string(stage.max_color)});
      bench::Measurement m;
      m.name = "bench.large_n." + std::string(sim::to_string(placement)) + "." +
               std::to_string(stage.n) + ".churn";
      m.wall_s = stage.wall_s;
      m.peak_rss_mb = stage.peak_rss_mb;
      measurements.push_back(std::move(m));
    }
    std::cout << churn_table.render() << "\n";
  }

  if (check_rss) {
    bool ok = true;
    std::size_t compared = 0;
    for (const bench::Measurement& m : measurements) {
      const bench::TrajectoryEntry* entry =
          bench::baseline_for(trajectory, m.name);
      if (entry == nullptr) {
        std::cout << "  " << m.name << ": no RSS baseline (skipped)\n";
        continue;
      }
      double baseline = 0.0;
      for (const bench::Measurement& b : entry->benchmarks)
        if (b.name == m.name) baseline = b.peak_rss_mb;
      if (baseline <= 0.0) {
        std::cout << "  " << m.name << ": baseline has no RSS (skipped)\n";
        continue;
      }
      ++compared;
      const bool regressed = m.peak_rss_mb > baseline * rss_factor;
      std::cout << "  " << m.name << ": " << util::fmt_fixed(m.peak_rss_mb, 1)
                << " MB vs baseline \"" << entry->label << "\" "
                << util::fmt_fixed(baseline, 1) << " MB"
                << (regressed ? "  REGRESSION" : "") << "\n";
      ok = ok && !regressed;
    }
    // Refuse a vacuous pass: a stage/placement absent from the trajectory
    // must be recorded (--append), not waved through.
    if (compared == 0) {
      std::cout << "rss check: FAIL (no stage had an RSS baseline)\n";
      return 1;
    }
    std::cout << (ok ? "rss check: PASS\n" : "rss check: FAIL\n");
    return ok ? 0 : 1;
  }

  if (append) {
    std::ostringstream config;
    config << "{\"strategy\": \"" << strategy << "\", \"placement\": \""
           << sim::to_string(placement)
           << "\", \"mean_degree\": " << util::fmt_fixed(mean_degree, 1)
           << ", \"seed\": " << seed << "}";
    bench::TrajectoryEntry entry;
    entry.label = options.get("label", "large-n");
    entry.config_json = config.str();
    entry.benchmarks = measurements;
    trajectory.push_back(std::move(entry));
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot open " << out_path << " for writing\n";
      return 1;
    }
    bench::write_trajectory(out, trajectory);
    std::cout << "[json] wrote " << out_path << " (" << trajectory.size()
              << " entries)\n";
  }
  return 0;
}
