// Large-N harness: proves the per-event hot path at 10³→10⁶ nodes.
//
// Each stage builds an n-node network by replaying a constant-density join
// workload (field scaled so the mean degree stays fixed; placement uniform,
// clustered, or poisson-disk — see sim::make_large_n_params) through a
// *local* strategy, and records
//   * wall-clock and events/s for the join phase,
//   * the engine's heap footprint in bytes/node (bench::memory_profile),
//   * the process peak RSS (VmHWM) after the stage.
// Stages run in ascending n, so the monotone RSS high-water mark after each
// stage is attributable to it.
//
// Modes:
//   default            run --ns stages and print the table
//   --append           also append a labeled entry (one measurement per
//                      stage, "bench.large_n.<placement>.<n>") to --out
//   --smoke            single capped stage (--smoke-n, default 10000) — the
//                      CI-sized run
//   --check-rss[=F]    compare each stage's peak RSS against the most
//                      recent trajectory entry covering it; exit 1 when any
//                      exceeds baseline * --rss-factor.  The CI memory gate
//                      (Release only, alongside perf_trajectory --check).
//   --check[=F]        wall-clock regression gate over the same measurement
//                      names (churn stages included): exit 1 when any stage
//                      exceeds its baseline * --check-factor.  Advisory in
//                      CI, like perf_trajectory --check.
//   --churn            after each join stage, run a continuous-time
//                      leave/move/power churn phase *on* the n-node network
//                      (sim::run_churn seeded with `initial_nodes = n`,
//                      arrival rate balancing the mean lifetime so the
//                      population holds near n) — the scenario family beyond
//                      join-only, at the same constant-density placement.
//                      Churn measurements append as
//                      "bench.large_n.<placement>.<n>.churn".  The churn
//                      table's prop/evt column reports BBB's per-event
//                      propagation work (processed + full ranks over
//                      events) — the number that must stay flat in n for
//                      rank-bounded recoloring ("-" for other strategies).
//   --check-population[=T]  after churn stages, require every stage's final
//                      population within T·n of n (default 0.25) and its
//                      final assignment valid; exit 1 otherwise.  The CTest
//                      churn smoke runs this.
//
// Options:
//   --ns=...           stage sizes (default 1000,10000,100000)
//   --strategy=LIST    comma-separated recoding strategies (default minim;
//                      "bbb-bounded" is the rank-bounded BBB — plain "bbb"
//                      recolors O(V+E) per event and is not a large-N
//                      citizen).  "minim" keeps the historical unsuffixed
//                      measurement names; every other strategy suffixes
//                      ".<strategy>", so baselines never mix strategies.
//   --placement=P      uniform | clustered | poisson-disk (default clustered)
//   --mean-degree=D    target mean out-degree (default 12)
//   --seed=S           master seed (default 2001)
//   --label=NAME       entry label for --append (default "large-n")
//   --out=FILE         trajectory path (default BENCH_sweep.json)
//   --rss-factor=X     allowed RSS growth factor for --check-rss (default 1.5)
//   --churn-duration=D churn horizon (default 60 time units)
//   --churn-lifetime=L mean node lifetime (default 600; ~D/L of the
//                      population leaves and is replaced during the phase)
//   --churn-move-rate=M    per-node movement rate (default 0.004)
//   --churn-power-rate=P   per-node power-toggle rate (default 0.002)

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "../bench/bench_util.hpp"
#include "../bench/trajectory.hpp"
#include "sim/churn.hpp"
#include "sim/replay.hpp"
#include "sim/simulation.hpp"
#include "sim/workload.hpp"
#include "strategies/bbb.hpp"
#include "strategies/factory.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace minim;

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > start) out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

/// Measurement-name suffix for a strategy.  "minim" owns the historical
/// unsuffixed names; everyone else appends ".<strategy>" so baselines for
/// different strategies never collide.
std::string strategy_suffix(const std::string& strategy) {
  return strategy == "minim" ? "" : "." + strategy;
}

sim::Placement placement_from(const std::string& name) {
  if (name == "uniform") return sim::Placement::kUniform;
  if (name == "clustered") return sim::Placement::kClustered;
  if (name == "poisson-disk") return sim::Placement::kPoissonDisk;
  std::cerr << "unknown placement \"" << name
            << "\" (expected uniform|clustered|poisson-disk)\n";
  std::exit(2);
}

struct StageResult {
  std::size_t n = 0;
  double gen_s = 0.0;     ///< workload generation
  double join_s = 0.0;    ///< event replay (the hot path under test)
  double events_per_s = 0.0;
  double bytes_per_node = 0.0;
  double peak_rss_mb = 0.0;
  net::Color max_color = 0;
};

StageResult run_stage(std::size_t n, sim::Placement placement, double mean_degree,
                      const std::string& strategy_name, std::uint64_t seed) {
  using clock = std::chrono::steady_clock;
  StageResult result;
  result.n = n;

  const sim::WorkloadParams params =
      sim::make_large_n_params(n, mean_degree, placement);
  // Stream keyed by n (not stage index): a --smoke run of one stage
  // reproduces exactly the workload the full run used for that n, so RSS
  // baselines compare like for like.
  util::Rng rng = util::Rng::for_stream(seed, n);
  const auto gen_start = clock::now();
  const sim::Workload workload = sim::make_join_workload(params, rng);
  result.gen_s =
      std::chrono::duration<double>(clock::now() - gen_start).count();

  const auto strategy = strategies::make_strategy(strategy_name);
  sim::Simulation::Params sim_params;
  sim_params.width = workload.width;
  sim_params.height = workload.height;
  sim::Simulation simulation(*strategy, sim_params);

  const auto join_start = clock::now();
  for (const auto& config : workload.joins) simulation.join(config);
  result.join_s =
      std::chrono::duration<double>(clock::now() - join_start).count();
  result.events_per_s =
      result.join_s > 0 ? static_cast<double>(n) / result.join_s : 0.0;

  const bench::MemoryProfile memory = bench::memory_profile(simulation.network());
  result.bytes_per_node = memory.bytes_per_node;
  result.peak_rss_mb =
      static_cast<double>(bench::peak_rss_bytes()) / (1024.0 * 1024.0);
  result.max_color = simulation.max_color();
  return result;
}

// ------------------------------------------------------------- churn stage

struct ChurnStageConfig {
  bool enabled = false;
  double duration = 60.0;
  double mean_lifetime = 600.0;
  double move_rate = 0.004;
  double power_rate = 0.002;
};

struct ChurnStageResult {
  std::size_t n = 0;
  double wall_s = 0.0;          ///< build (n joins) + churn phase
  double events_per_s = 0.0;    ///< all events over the whole stage
  std::size_t churn_events = 0; ///< events beyond the n seed joins
  std::size_t peak_nodes = 0;
  std::size_t final_nodes = 0;
  double peak_rss_mb = 0.0;
  net::Color max_color = 0;
  /// BBB only: mean per-event propagation work, (processed + full ranks) /
  /// events.  Flat in n ⇔ rank-bounded recoloring is doing its job.
  /// Negative when the strategy exposes no such counter.
  double prop_per_event = -1.0;
  bool final_valid = false;
};

/// Runs leave/move/power churn on an n-node constant-density network: the
/// network is seeded to n nodes (same placement family as the join stage),
/// then arrivals at rate n/lifetime keep the population near n while nodes
/// leave, move, and duty-cycle their transmitters.
ChurnStageResult run_churn_stage(std::size_t n, sim::Placement placement,
                                 double mean_degree,
                                 const std::string& strategy_name,
                                 std::uint64_t seed,
                                 const ChurnStageConfig& config) {
  using clock = std::chrono::steady_clock;
  const sim::WorkloadParams params =
      sim::make_large_n_params(n, mean_degree, placement);

  sim::ChurnParams churn;
  churn.duration = config.duration;
  churn.mean_lifetime = config.mean_lifetime;
  churn.arrival_rate = static_cast<double>(n) / config.mean_lifetime;
  churn.move_rate = config.move_rate;
  churn.power_rate = config.power_rate;
  churn.min_range = params.min_range;
  churn.max_range = params.max_range;
  churn.width = params.width;
  churn.height = params.height;
  churn.sample_interval = config.duration / 4.0;
  churn.max_nodes = n + n / 4 + 16;
  churn.initial_nodes = n;
  churn.initial_placement = placement;
  churn.initial_cluster_count = params.cluster_count;
  churn.initial_cluster_sigma = params.cluster_sigma;
  churn.initial_min_separation = params.min_separation;

  const auto strategy = strategies::make_strategy(strategy_name);
  // A stream namespace disjoint from the join stages' (keyed by n).
  util::Rng rng = util::Rng::for_stream(
      seed, static_cast<std::uint64_t>(n) + (std::uint64_t{1} << 32));

  ChurnStageResult result;
  result.n = n;
  const auto start = clock::now();
  const sim::ChurnResult outcome = sim::run_churn(churn, *strategy, rng);
  result.wall_s = std::chrono::duration<double>(clock::now() - start).count();
  result.events_per_s =
      result.wall_s > 0
          ? static_cast<double>(outcome.totals.events) / result.wall_s
          : 0.0;
  result.churn_events = outcome.totals.events > n ? outcome.totals.events - n : 0;
  result.peak_nodes = outcome.peak_nodes;
  result.final_nodes =
      outcome.samples.empty() ? outcome.peak_nodes : outcome.samples.back().nodes;
  result.peak_rss_mb =
      static_cast<double>(bench::peak_rss_bytes()) / (1024.0 * 1024.0);
  result.max_color = outcome.final_max_color;
  result.final_valid = outcome.final_valid;
  if (const auto* bbb =
          dynamic_cast<const strategies::BbbStrategy*>(strategy.get())) {
    const auto& counters = bbb->counters();
    if (counters.events > 0)
      result.prop_per_event =
          static_cast<double>(counters.processed_ranks + counters.full_ranks) /
          static_cast<double>(counters.events);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options options(argc, argv);
  const bool smoke = options.get_bool("smoke", false);
  std::vector<double> ns =
      bench::double_list_from(options, "ns", {1000, 10000, 100000});
  if (smoke)
    ns = {static_cast<double>(options.get_int("smoke-n", 10000))};
  const std::vector<std::string> strategy_list =
      split_list(options.get("strategy", "minim"));
  if (strategy_list.empty()) {
    std::cerr << "--strategy: empty strategy list\n";
    return 2;
  }
  const sim::Placement placement =
      placement_from(options.get("placement", "clustered"));
  const double mean_degree = options.get_double("mean-degree", 12.0);
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 2001));
  const std::string out_path = options.get("out", "BENCH_sweep.json");
  const bool append = options.get_bool("append", false);
  const bool check_rss = options.has("check-rss");
  const std::string check_path =
      options.get("check-rss", "") == "true" || options.get("check-rss", "").empty()
          ? out_path
          : options.get("check-rss", out_path);
  const double rss_factor = options.get_double("rss-factor", 1.5);
  const bool check_wall = options.has("check");
  const std::string check_wall_raw = options.get("check", "");
  const std::string check_wall_path =
      check_wall_raw == "true" || check_wall_raw.empty() ? out_path
                                                         : check_wall_raw;
  const double check_factor = options.get_double("check-factor", 1.5);
  const bool check_population = options.has("check-population");
  const std::string population_raw = options.get("check-population", "");
  const double population_tolerance =
      population_raw == "true" || population_raw.empty()
          ? 0.25
          : std::strtod(population_raw.c_str(), nullptr);
  ChurnStageConfig churn_config;
  churn_config.enabled = options.get_bool("churn", false);
  churn_config.duration = options.get_double("churn-duration", 60.0);
  churn_config.mean_lifetime = options.get_double("churn-lifetime", 600.0);
  churn_config.move_rate = options.get_double("churn-move-rate", 0.004);
  churn_config.power_rate = options.get_double("churn-power-rate", 0.002);

  std::vector<bench::TrajectoryEntry> trajectory = bench::load_trajectory(
      check_rss ? check_path : (check_wall ? check_wall_path : out_path));
  if ((check_rss || check_wall) && trajectory.empty()) {
    std::cerr << (check_rss ? "--check-rss" : "--check")
              << ": no baseline entries in "
              << (check_rss ? check_path : check_wall_path) << "\n";
    return 1;
  }
  if (append && trajectory.empty() && !bench::read_file(out_path).empty()) {
    std::cerr << out_path
              << " exists but is not a recognizable trajectory; refusing to "
                 "overwrite it\n";
    return 1;
  }

  std::cout << "=== Large-N join hot path (strategies=";
  for (std::size_t i = 0; i < strategy_list.size(); ++i)
    std::cout << (i ? "," : "") << strategy_list[i];
  std::cout << ", placement=" << sim::to_string(placement)
            << ", mean degree ~" << util::fmt_fixed(mean_degree, 1) << ") ===\n";

  util::TextTable table("stages");
  table.set_header({"strategy", "n", "gen s", "join s", "events/s",
                    "bytes/node", "peak RSS MB", "max color"});
  std::vector<bench::Measurement> measurements;
  for (const std::string& strategy : strategy_list) {
    for (const double stage_n : ns) {
      const auto n = static_cast<std::size_t>(stage_n);
      const StageResult stage =
          run_stage(n, placement, mean_degree, strategy, seed);
      table.add_row({strategy, std::to_string(stage.n),
                     util::fmt_fixed(stage.gen_s, 2),
                     util::fmt_fixed(stage.join_s, 2),
                     util::fmt_fixed(stage.events_per_s, 0),
                     util::fmt_fixed(stage.bytes_per_node, 1),
                     util::fmt_fixed(stage.peak_rss_mb, 1),
                     std::to_string(stage.max_color)});
      bench::Measurement m;
      m.name = "bench.large_n." + std::string(sim::to_string(placement)) +
               "." + std::to_string(stage.n) + strategy_suffix(strategy);
      m.wall_s = stage.join_s;
      m.peak_rss_mb = stage.peak_rss_mb;
      m.bytes_per_node = stage.bytes_per_node;
      measurements.push_back(std::move(m));
    }
  }
  std::cout << table.render() << "\n";

  bool population_ok = true;
  if (churn_config.enabled) {
    std::cout << "=== Churn phase (duration "
              << util::fmt_fixed(churn_config.duration, 0) << ", lifetime "
              << util::fmt_fixed(churn_config.mean_lifetime, 0)
              << ": leaves/arrivals hold the population near n) ===\n";
    util::TextTable churn_table("churn stages");
    churn_table.set_header({"strategy", "n", "wall s", "events/s",
                            "churn events", "peak n", "final n", "prop/evt",
                            "peak RSS MB", "max color"});
    for (const std::string& strategy : strategy_list) {
      for (const double stage_n : ns) {
        const auto n = static_cast<std::size_t>(stage_n);
        const ChurnStageResult stage = run_churn_stage(
            n, placement, mean_degree, strategy, seed, churn_config);
        churn_table.add_row(
            {strategy, std::to_string(stage.n),
             util::fmt_fixed(stage.wall_s, 2),
             util::fmt_fixed(stage.events_per_s, 0),
             std::to_string(stage.churn_events),
             std::to_string(stage.peak_nodes),
             std::to_string(stage.final_nodes),
             stage.prop_per_event < 0.0
                 ? std::string("-")
                 : util::fmt_fixed(stage.prop_per_event, 1),
             util::fmt_fixed(stage.peak_rss_mb, 1),
             std::to_string(stage.max_color)});
        if (check_population) {
          const auto drift = static_cast<double>(
              stage.final_nodes > n ? stage.final_nodes - n
                                    : n - stage.final_nodes);
          const bool in_band =
              drift <= population_tolerance * static_cast<double>(n);
          if (!in_band || !stage.final_valid) {
            population_ok = false;
            std::cout << "  population check FAIL: " << strategy << " n="
                      << n << " final=" << stage.final_nodes
                      << (stage.final_valid ? "" : " (invalid assignment)")
                      << "\n";
          }
        }
        bench::Measurement m;
        m.name = "bench.large_n." + std::string(sim::to_string(placement)) +
                 "." + std::to_string(stage.n) + ".churn" +
                 strategy_suffix(strategy);
        m.wall_s = stage.wall_s;
        m.peak_rss_mb = stage.peak_rss_mb;
        measurements.push_back(std::move(m));
      }
    }
    std::cout << churn_table.render() << "\n";
  }
  if (check_population) {
    std::cout << "population check: " << (population_ok ? "PASS" : "FAIL")
              << "\n";
    if (!population_ok) return 1;
  }

  if (check_rss) {
    bool ok = true;
    std::size_t compared = 0;
    for (const bench::Measurement& m : measurements) {
      const bench::TrajectoryEntry* entry =
          bench::baseline_for(trajectory, m.name);
      if (entry == nullptr) {
        std::cout << "  " << m.name << ": no RSS baseline (skipped)\n";
        continue;
      }
      double baseline = 0.0;
      for (const bench::Measurement& b : entry->benchmarks)
        if (b.name == m.name) baseline = b.peak_rss_mb;
      if (baseline <= 0.0) {
        std::cout << "  " << m.name << ": baseline has no RSS (skipped)\n";
        continue;
      }
      ++compared;
      const bool regressed = m.peak_rss_mb > baseline * rss_factor;
      std::cout << "  " << m.name << ": " << util::fmt_fixed(m.peak_rss_mb, 1)
                << " MB vs baseline \"" << entry->label << "\" "
                << util::fmt_fixed(baseline, 1) << " MB"
                << (regressed ? "  REGRESSION" : "") << "\n";
      ok = ok && !regressed;
    }
    // Refuse a vacuous pass: a stage/placement absent from the trajectory
    // must be recorded (--append), not waved through.
    if (compared == 0) {
      std::cout << "rss check: FAIL (no stage had an RSS baseline)\n";
      return 1;
    }
    std::cout << (ok ? "rss check: PASS\n" : "rss check: FAIL\n");
    return ok ? 0 : 1;
  }

  if (check_wall) {
    std::cout << "checking wall clocks against " << check_wall_path
              << " (factor " << util::fmt_fixed(check_factor, 2) << ")\n";
    bool ok = true;
    std::size_t compared = 0;
    for (const bench::Measurement& m : measurements) {
      const bench::TrajectoryEntry* entry =
          bench::baseline_for(trajectory, m.name);
      if (entry == nullptr) {
        std::cout << "  " << m.name << ": no baseline (skipped)\n";
        continue;
      }
      double baseline = 0.0;
      for (const bench::Measurement& b : entry->benchmarks)
        if (b.name == m.name) baseline = b.wall_s;
      ++compared;
      const bool regressed = m.wall_s > baseline * check_factor;
      std::cout << "  " << m.name << ": " << util::fmt_fixed(m.wall_s, 2)
                << " s vs baseline \"" << entry->label << "\" "
                << util::fmt_fixed(baseline, 2) << " s"
                << (regressed ? "  REGRESSION" : "") << "\n";
      ok = ok && !regressed;
    }
    if (compared == 0) {
      std::cout << "wall check: FAIL (no stage had a baseline)\n";
      return 1;
    }
    std::cout << (ok ? "wall check: PASS\n" : "wall check: FAIL\n");
    return ok ? 0 : 1;
  }

  if (append) {
    std::ostringstream config;
    config << "{\"strategy\": \"";
    for (std::size_t i = 0; i < strategy_list.size(); ++i)
      config << (i ? "," : "") << strategy_list[i];
    config << "\", \"placement\": \"" << sim::to_string(placement)
           << "\", \"mean_degree\": " << util::fmt_fixed(mean_degree, 1)
           << ", \"seed\": " << seed << "}";
    bench::TrajectoryEntry entry;
    entry.label = options.get("label", "large-n");
    entry.config_json = config.str();
    entry.benchmarks = measurements;
    trajectory.push_back(std::move(entry));
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot open " << out_path << " for writing\n";
      return 1;
    }
    bench::write_trajectory(out, trajectory);
    std::cout << "[json] wrote " << out_path << " (" << trajectory.size()
              << " entries)\n";
  }
  return 0;
}
