// serve_latency: serving-layer latency study for the online assignment
// engine (src/serve/).
//
// Drives an AssignmentEngine through three phases per strategy and reports
// the per-event-type latency distribution the way a service SLO is written:
//
//   1. ramp    — joins up to --target-live nodes (not measured);
//   2. steady  — --events of mixed churn (join/leave/move/power weighted to
//                hold the population near the target), per-type
//                p50/p99/p99.9 plus sustained events/sec;
//   3. storm   — --storm-rounds of large power raises (range tripled, then
//                restored), the recolor-storm tail study: each raise drags
//                a whole neighborhood through recoloring, so its p99.9 is
//                the latency class a bounded strategy exists to cap.
//
// The event sequence is generated from --seed alone (never from engine
// state), so every strategy serves the identical workload.
//
// Flags:
//   --strategies=...    default minim,bbb-bounded
//   --events=N          steady-churn events (default 20000)
//   --target-live=N     steady-state population (default 300)
//   --storm-rounds=N    power-raise storms (default 200)
//   --seed=S            workload seed (default 2001)
//   --append            append a labeled entry to the trajectory
//   --label=NAME        entry label for --append (default "serve-latency")
//   --out=FILE          trajectory path (default BENCH_sweep.json)
//
// Appended measurements (bench.serve.*) carry the optional latency fields
// of trajectory.hpp: p50_us/p99_us/p999_us per event type and events_per_s
// on the throughput record.

#include <array>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "../bench/bench_util.hpp"
#include "../bench/trajectory.hpp"
#include "serve/engine.hpp"
#include "sim/trace.hpp"
#include "util/latency_histogram.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace minim;
using Kind = sim::TraceEvent::Kind;

/// Deterministic churn-trace generator.  Draws only on its own state (RNG +
/// live set + per-node ranges), so the same seed yields the same event
/// sequence for every strategy under test.
class ChurnTraceGen {
 public:
  ChurnTraceGen(std::uint64_t seed, std::size_t target_live)
      : rng_(util::Rng::for_stream(seed, 0)), target_(target_live) {}

  sim::TraceEvent join_event() {
    sim::TraceEvent e;
    e.kind = Kind::kJoin;
    e.position = {rng_.uniform(0.0, 100.0), rng_.uniform(0.0, 100.0)};
    e.range = rng_.uniform(10.0, 25.0);
    live_.push_back(range_of_.size());
    range_of_.push_back(e.range);
    return e;
  }

  /// One steady-churn event: joins/leaves biased to hold the population
  /// near the target, moves and power tweaks on random live nodes.
  sim::TraceEvent next_steady() {
    const double occupancy =
        static_cast<double>(live_.size()) / static_cast<double>(target_);
    const double u = rng_.uniform(0.0, 1.0);
    if (live_.empty() || occupancy < 0.8 || (occupancy <= 1.2 && u < 0.25))
      return join_event();
    if (occupancy > 1.2 || u < 0.5) {
      sim::TraceEvent e;
      e.kind = Kind::kLeave;
      e.node = take_random_live();
      return e;
    }
    if (u < 0.8) {
      sim::TraceEvent e;
      e.kind = Kind::kMove;
      e.node = random_live();
      e.position = {rng_.uniform(0.0, 100.0), rng_.uniform(0.0, 100.0)};
      return e;
    }
    sim::TraceEvent e;
    e.kind = Kind::kPower;
    e.node = random_live();
    e.range = rng_.uniform(10.0, 25.0);
    range_of_[e.node] = e.range;
    return e;
  }

  /// The storm pair: a 3x range raise on a random live node, then the
  /// restoring power event.  Both belong to the tail study.
  std::pair<sim::TraceEvent, sim::TraceEvent> storm_pair() {
    const std::size_t node = random_live();
    const double before = range_of_[node];
    sim::TraceEvent raise;
    raise.kind = Kind::kPower;
    raise.node = node;
    raise.range = before * 3.0;
    sim::TraceEvent restore = raise;
    restore.range = before;
    return {raise, restore};
  }

  std::size_t live_count() const { return live_.size(); }

 private:
  std::size_t random_live() {
    return live_[rng_.below(live_.size())];
  }
  std::size_t take_random_live() {
    const std::size_t slot = rng_.below(live_.size());
    const std::size_t node = live_[slot];
    live_[slot] = live_.back();
    live_.pop_back();
    return node;
  }

  util::Rng rng_;
  std::size_t target_;
  std::vector<std::size_t> live_;      ///< join indices currently live
  std::vector<double> range_of_;       ///< by join index (stale after leave)
};

struct StrategyRun {
  std::string strategy;
  std::array<util::LatencyHistogram, 4> steady;  ///< by Kind
  util::LatencyHistogram storm;
  double steady_wall_s = 0.0;
  std::size_t steady_events = 0;
};

StrategyRun run_strategy(const std::string& strategy, std::uint64_t seed,
                         std::size_t target_live, std::size_t events,
                         std::size_t storm_rounds) {
  using Clock = std::chrono::steady_clock;
  StrategyRun run;
  run.strategy = strategy;

  serve::AssignmentEngine engine(strategy);
  ChurnTraceGen gen(seed, target_live);

  for (std::size_t i = 0; i < target_live; ++i) engine.apply(gen.join_event());

  const auto steady_start = Clock::now();
  for (std::size_t i = 0; i < events; ++i) {
    const serve::EventReceipt receipt = engine.apply(gen.next_steady());
    run.steady[static_cast<std::size_t>(receipt.kind)].record(
        receipt.latency_ns);
  }
  run.steady_wall_s =
      std::chrono::duration<double>(Clock::now() - steady_start).count();
  run.steady_events = events;

  for (std::size_t i = 0; i < storm_rounds; ++i) {
    const auto [raise, restore] = gen.storm_pair();
    run.storm.record(engine.apply(raise).latency_ns);
    run.storm.record(engine.apply(restore).latency_ns);
  }
  return run;
}

std::string quantile_cell(const util::LatencyHistogram& h, double q) {
  return util::fmt_fixed(h.quantile(q) * 1e-3, 1);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options options(argc, argv);
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 2001));
  const auto events =
      static_cast<std::size_t>(options.get_int("events", 20000));
  const auto target_live =
      static_cast<std::size_t>(options.get_int("target-live", 300));
  const auto storm_rounds =
      static_cast<std::size_t>(options.get_int("storm-rounds", 200));
  const std::vector<std::string> strategies =
      bench::string_list_from(options, "strategies", {"minim", "bbb-bounded"});

  std::cout << "=== serve_latency: online engine latency study ===\n"
            << "target_live " << target_live << ", steady events " << events
            << ", storm rounds " << storm_rounds << ", seed " << seed
            << "\n\n";

  std::vector<StrategyRun> runs;
  for (const std::string& strategy : strategies)
    runs.push_back(
        run_strategy(strategy, seed, target_live, events, storm_rounds));

  util::TextTable table("per-event-type latency (us)");
  table.set_header({"strategy", "phase", "type", "n", "p50", "p99", "p99.9",
                    "max"});
  for (const StrategyRun& run : runs) {
    for (Kind kind : {Kind::kJoin, Kind::kLeave, Kind::kMove, Kind::kPower}) {
      const util::LatencyHistogram& h =
          run.steady[static_cast<std::size_t>(kind)];
      if (h.count() == 0) continue;
      table.add_row({run.strategy, "steady", sim::to_string(kind),
                     std::to_string(h.count()), quantile_cell(h, 0.50),
                     quantile_cell(h, 0.99), quantile_cell(h, 0.999),
                     util::fmt_fixed(static_cast<double>(h.max()) * 1e-3, 1)});
    }
    const util::LatencyHistogram& storm = run.storm;
    table.add_row({run.strategy, "storm", "power",
                   std::to_string(storm.count()), quantile_cell(storm, 0.50),
                   quantile_cell(storm, 0.99), quantile_cell(storm, 0.999),
                   util::fmt_fixed(static_cast<double>(storm.max()) * 1e-3,
                                   1)});
  }
  std::cout << table.render() << "\n";

  for (const StrategyRun& run : runs)
    std::cout << "[throughput] " << run.strategy << ": "
              << util::fmt_fixed(static_cast<double>(run.steady_events) /
                                     run.steady_wall_s,
                                 0)
              << " events/s sustained over "
              << util::fmt_fixed(run.steady_wall_s, 3) << " s\n";

  if (!options.get_bool("append", false)) return 0;

  const std::string out_path = options.get("out", "BENCH_sweep.json");
  std::vector<bench::TrajectoryEntry> trajectory =
      bench::load_trajectory(out_path);
  if (trajectory.empty() && !bench::read_file(out_path).empty()) {
    std::cerr << out_path
              << " exists but is not a recognizable trajectory; refusing to "
                 "overwrite\n";
    return 1;
  }

  bench::TrajectoryEntry entry;
  entry.label = options.get("label", "serve-latency");
  std::ostringstream config;
  config << "{\"events\": " << events << ", \"target_live\": " << target_live
         << ", \"storm_rounds\": " << storm_rounds << ", \"seed\": " << seed
         << "}";
  entry.config_json = config.str();

  for (const StrategyRun& run : runs) {
    for (Kind kind : {Kind::kJoin, Kind::kLeave, Kind::kMove, Kind::kPower}) {
      const util::LatencyHistogram& h =
          run.steady[static_cast<std::size_t>(kind)];
      if (h.count() == 0) continue;
      bench::Measurement m;
      m.name = std::string("bench.serve.steady.") + sim::to_string(kind) +
               "." + run.strategy;
      m.wall_s = h.mean() * static_cast<double>(h.count()) * 1e-9;
      m.p50_us = h.quantile(0.50) * 1e-3;
      m.p99_us = h.quantile(0.99) * 1e-3;
      m.p999_us = h.quantile(0.999) * 1e-3;
      entry.benchmarks.push_back(std::move(m));
    }
    bench::Measurement throughput;
    throughput.name = "bench.serve.steady.throughput." + run.strategy;
    throughput.wall_s = run.steady_wall_s;
    throughput.events_per_s =
        static_cast<double>(run.steady_events) / run.steady_wall_s;
    entry.benchmarks.push_back(std::move(throughput));

    bench::Measurement storm;
    storm.name = "bench.serve.storm.power." + run.strategy;
    storm.wall_s =
        run.storm.mean() * static_cast<double>(run.storm.count()) * 1e-9;
    storm.p50_us = run.storm.quantile(0.50) * 1e-3;
    storm.p99_us = run.storm.quantile(0.99) * 1e-3;
    storm.p999_us = run.storm.quantile(0.999) * 1e-3;
    entry.benchmarks.push_back(std::move(storm));
  }
  trajectory.push_back(std::move(entry));

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 1;
  }
  bench::write_trajectory(out, trajectory);
  std::cout << "[json] wrote " << out_path << " (" << trajectory.size()
            << " entries)\n";
  return 0;
}
