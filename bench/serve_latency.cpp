// serve_latency: serving-layer latency and throughput study for the online
// assignment engine (src/serve/).
//
// Per-event phases (the latency SLO study) drive an AssignmentEngine through
// three phases per strategy and report the per-event-type latency
// distribution the way a service SLO is written:
//
//   1. ramp    — joins up to --target-live nodes (not measured);
//   2. steady  — --events of mixed churn (join/leave/move/power weighted to
//                hold the population near the target), per-type
//                p50/p99/p99.9 plus sustained events/sec;
//   3. storm   — --storm-rounds of large power raises (range tripled, then
//                restored), the recolor-storm tail study: each raise drags
//                a whole neighborhood through recoloring, so its p99.9 is
//                the latency class a bounded strategy exists to cap.
//
// The batch sweep (the batching tentpole's committed evidence) replays the
// IDENTICAL steady and storm workloads through `apply_batch` at each
// --batch-sizes size: one coalesced repair per batch for batch-capable
// strategies, so events/s rises with the batch size until the per-batch
// propagation cost dominates.  Batch size 1 is the pipelining-free control.
//
// The threads sweep crosses the batch sweep with --recolor-threads: each
// bbb-* cell re-runs with component-parallel bounded recoloring
// (engine Params::recolor_threads), which is bit-identical to serial, so
// any events/s delta is pure scheduling.  threads=1 keeps the established
// measurement names (comparable against pre-parallel baselines); threads>1
// cells append "@tN", the scaling-name convention check_measurements
// skips against single-core baselines.  Strategies without the knob only
// run the serial column.
//
// The event sequence is generated from --seed alone (never from engine
// state), so every strategy, batch size, and thread count serves the
// identical workload.
//
// Flags:
//   --strategies=...    default minim,bbb-bounded
//   --events=N          steady-churn events (default 20000; 2000 with --smoke)
//   --target-live=N     steady-state population (default 300; 80 with --smoke)
//   --storm-rounds=N    power-raise storms (default 200; 20 with --smoke)
//   --batch-sizes=...   batch sweep sizes (default 1,8,64,512)
//   --recolor-threads=... recolor thread counts for the batch sweep
//                       (default 1; e.g. 1,2,4)
//   --seed=S            workload seed (default 2001)
//   --smoke             CI-sized defaults for everything above
//   --append            append a labeled entry to the trajectory
//   --label=NAME        entry label for --append (default "serve-latency")
//   --out=FILE          trajectory path (default BENCH_sweep.json)
//   --check[=FILE]      regression-gate mode: compare this run's
//                       measurements against the most recent covering
//                       entries (default file: --out) and exit 1 on
//                       regression; nothing is written.  Throughput
//                       (events_per_s) gates at baseline/factor, wall
//                       clocks at baseline*factor (bench/trajectory.hpp).
//   --check-factor=X    allowed degradation factor (default 1.5)
//
// Appended measurements (bench.serve.*) carry the optional latency fields
// of trajectory.hpp: p50_us/p99_us/p999_us per event type, events_per_s on
// the throughput and batch-sweep records.

#include <array>
#include <chrono>
#include <fstream>
#include <iostream>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "../bench/bench_util.hpp"
#include "../bench/trajectory.hpp"
#include "serve/engine.hpp"
#include "sim/trace.hpp"
#include "util/latency_histogram.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace minim;
using Kind = sim::TraceEvent::Kind;
using Clock = std::chrono::steady_clock;

/// Deterministic churn-trace generator.  Draws only on its own state (RNG +
/// live set + per-node ranges), so the same seed yields the same event
/// sequence for every strategy under test.
class ChurnTraceGen {
 public:
  ChurnTraceGen(std::uint64_t seed, std::size_t target_live)
      : rng_(util::Rng::for_stream(seed, 0)), target_(target_live) {}

  sim::TraceEvent join_event() {
    sim::TraceEvent e;
    e.kind = Kind::kJoin;
    e.position = {rng_.uniform(0.0, 100.0), rng_.uniform(0.0, 100.0)};
    e.range = rng_.uniform(10.0, 25.0);
    live_.push_back(range_of_.size());
    range_of_.push_back(e.range);
    return e;
  }

  /// One steady-churn event: joins/leaves biased to hold the population
  /// near the target, moves and power tweaks on random live nodes.
  sim::TraceEvent next_steady() {
    const double occupancy =
        static_cast<double>(live_.size()) / static_cast<double>(target_);
    const double u = rng_.uniform(0.0, 1.0);
    if (live_.empty() || occupancy < 0.8 || (occupancy <= 1.2 && u < 0.25))
      return join_event();
    if (occupancy > 1.2 || u < 0.5) {
      sim::TraceEvent e;
      e.kind = Kind::kLeave;
      e.node = take_random_live();
      return e;
    }
    if (u < 0.8) {
      sim::TraceEvent e;
      e.kind = Kind::kMove;
      e.node = random_live();
      e.position = {rng_.uniform(0.0, 100.0), rng_.uniform(0.0, 100.0)};
      return e;
    }
    sim::TraceEvent e;
    e.kind = Kind::kPower;
    e.node = random_live();
    e.range = rng_.uniform(10.0, 25.0);
    range_of_[e.node] = e.range;
    return e;
  }

  /// The storm pair: a 3x range raise on a random live node, then the
  /// restoring power event.  Both belong to the tail study.
  std::pair<sim::TraceEvent, sim::TraceEvent> storm_pair() {
    const std::size_t node = random_live();
    const double before = range_of_[node];
    sim::TraceEvent raise;
    raise.kind = Kind::kPower;
    raise.node = node;
    raise.range = before * 3.0;
    sim::TraceEvent restore = raise;
    restore.range = before;
    return {raise, restore};
  }

  std::size_t live_count() const { return live_.size(); }

 private:
  std::size_t random_live() {
    return live_[rng_.below(live_.size())];
  }
  std::size_t take_random_live() {
    const std::size_t slot = rng_.below(live_.size());
    const std::size_t node = live_[slot];
    live_[slot] = live_.back();
    live_.pop_back();
    return node;
  }

  util::Rng rng_;
  std::size_t target_;
  std::vector<std::size_t> live_;      ///< join indices currently live
  std::vector<double> range_of_;       ///< by join index (stale after leave)
};

/// The full study workload, pre-generated so the per-event phases and every
/// batch size of the sweep replay literally the same trace.
struct Workload {
  sim::Trace ramp;    ///< target_live joins (never measured)
  sim::Trace steady;  ///< mixed churn
  sim::Trace storm;   ///< raise/restore pairs, flattened in order
};

Workload generate_workload(std::uint64_t seed, std::size_t target_live,
                           std::size_t events, std::size_t storm_rounds) {
  ChurnTraceGen gen(seed, target_live);
  Workload w;
  for (std::size_t i = 0; i < target_live; ++i)
    w.ramp.push_back(gen.join_event());
  for (std::size_t i = 0; i < events; ++i)
    w.steady.push_back(gen.next_steady());
  for (std::size_t i = 0; i < storm_rounds; ++i) {
    const auto [raise, restore] = gen.storm_pair();
    w.storm.push_back(raise);
    w.storm.push_back(restore);
  }
  return w;
}

struct StrategyRun {
  std::string strategy;
  std::array<util::LatencyHistogram, 4> steady;  ///< by Kind
  util::LatencyHistogram storm;
  double steady_wall_s = 0.0;
  std::size_t steady_events = 0;
};

StrategyRun run_strategy(const std::string& strategy, const Workload& w) {
  StrategyRun run;
  run.strategy = strategy;

  serve::AssignmentEngine engine(strategy);
  for (const sim::TraceEvent& event : w.ramp) engine.apply(event);

  const auto steady_start = Clock::now();
  for (const sim::TraceEvent& event : w.steady) {
    const serve::EventReceipt receipt = engine.apply(event);
    run.steady[static_cast<std::size_t>(receipt.kind)].record(
        receipt.latency_ns);
  }
  run.steady_wall_s =
      std::chrono::duration<double>(Clock::now() - steady_start).count();
  run.steady_events = w.steady.size();

  for (const sim::TraceEvent& event : w.storm)
    run.storm.record(engine.apply(event).latency_ns);
  return run;
}

/// One (strategy, recolor threads, batch size) cell of the sweep.
struct BatchRun {
  std::string strategy;
  std::size_t threads = 1;  ///< recolor_threads of this cell
  std::size_t batch = 1;
  double steady_wall_s = 0.0;
  std::size_t steady_events = 0;
  double storm_wall_s = 0.0;
  std::size_t storm_events = 0;
  std::size_t coalesced_batches = 0;  ///< batches repaired in one pass

  /// "@tN" scaling suffix on threads>1 names: check_measurements skips those
  /// against single-core baselines, and threads=1 keeps the pre-parallel
  /// measurement names so existing baselines keep gating the serial path.
  std::string name_suffix() const {
    return threads == 1 ? "" : "@t" + std::to_string(threads);
  }
};

/// Applies `trace` in `batch`-sized chunks; returns the wall clock.
double apply_chunked(serve::AssignmentEngine& engine, const sim::Trace& trace,
                     std::size_t batch, std::size_t* coalesced) {
  const auto start = Clock::now();
  for (std::size_t at = 0; at < trace.size(); at += batch) {
    const std::size_t take = std::min(batch, trace.size() - at);
    const serve::BatchReceipt receipt =
        engine.apply_batch(std::span<const sim::TraceEvent>(
            trace.data() + at, take));
    if (coalesced != nullptr && receipt.coalesced) ++*coalesced;
  }
  return std::chrono::duration<double>(Clock::now() - start).count();
}

BatchRun run_batched(const std::string& strategy, const Workload& w,
                     std::size_t batch, std::size_t threads) {
  BatchRun run;
  run.strategy = strategy;
  run.threads = threads;
  run.batch = batch;

  serve::AssignmentEngine::Params params;
  params.recolor_threads = threads;
  serve::AssignmentEngine engine(strategy, params);
  apply_chunked(engine, w.ramp, batch, nullptr);  // ramp: not measured
  run.steady_wall_s =
      apply_chunked(engine, w.steady, batch, &run.coalesced_batches);
  run.steady_events = w.steady.size();
  run.storm_wall_s =
      apply_chunked(engine, w.storm, batch, &run.coalesced_batches);
  run.storm_events = w.storm.size();
  return run;
}

std::string quantile_cell(const util::LatencyHistogram& h, double q) {
  return util::fmt_fixed(h.quantile(q) * 1e-3, 1);
}

double events_per_s(std::size_t events, double wall_s) {
  return wall_s > 0.0 ? static_cast<double>(events) / wall_s : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options options(argc, argv);
  const bool smoke = options.get_bool("smoke", false);
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 2001));
  const auto events = static_cast<std::size_t>(
      options.get_int("events", smoke ? 2000 : 20000));
  const auto target_live = static_cast<std::size_t>(
      options.get_int("target-live", smoke ? 80 : 300));
  const auto storm_rounds = static_cast<std::size_t>(
      options.get_int("storm-rounds", smoke ? 20 : 200));
  const std::vector<std::string> strategies =
      bench::string_list_from(options, "strategies", {"minim", "bbb-bounded"});
  const std::vector<double> batch_size_list =
      bench::double_list_from(options, "batch-sizes", {1, 8, 64, 512});
  std::vector<std::size_t> batch_sizes;
  for (const double b : batch_size_list)
    batch_sizes.push_back(std::max<std::size_t>(1, static_cast<std::size_t>(b)));
  const std::vector<double> threads_list =
      bench::double_list_from(options, "recolor-threads", {1});
  std::vector<std::size_t> recolor_threads;
  for (const double t : threads_list)
    recolor_threads.push_back(
        std::max<std::size_t>(1, static_cast<std::size_t>(t)));

  const bool check = options.has("check");
  const std::string out_path = options.get("out", "BENCH_sweep.json");
  const std::string check_path =
      options.get("check", "") == "true" || options.get("check", "").empty()
          ? out_path
          : options.get("check", out_path);
  const double check_factor = options.get_double("check-factor", 1.5);

  // Resolve the trajectory up front: a missing baseline in check mode (or
  // an unparseable --out in append mode) must fail before minutes of
  // measurement.
  std::vector<bench::TrajectoryEntry> trajectory =
      bench::load_trajectory(check ? check_path : out_path);
  if (check && trajectory.empty()) {
    std::cerr << "--check: no baseline entries in " << check_path << "\n";
    return 1;
  }

  std::cout << "=== serve_latency: online engine latency study ===\n"
            << "target_live " << target_live << ", steady events " << events
            << ", storm rounds " << storm_rounds << ", seed " << seed
            << "\n\n";

  const Workload workload =
      generate_workload(seed, target_live, events, storm_rounds);

  std::vector<StrategyRun> runs;
  for (const std::string& strategy : strategies)
    runs.push_back(run_strategy(strategy, workload));

  util::TextTable table("per-event-type latency (us)");
  table.set_header({"strategy", "phase", "type", "n", "p50", "p99", "p99.9",
                    "max"});
  for (const StrategyRun& run : runs) {
    for (Kind kind : {Kind::kJoin, Kind::kLeave, Kind::kMove, Kind::kPower}) {
      const util::LatencyHistogram& h =
          run.steady[static_cast<std::size_t>(kind)];
      if (h.count() == 0) continue;
      table.add_row({run.strategy, "steady", sim::to_string(kind),
                     std::to_string(h.count()), quantile_cell(h, 0.50),
                     quantile_cell(h, 0.99), quantile_cell(h, 0.999),
                     util::fmt_fixed(static_cast<double>(h.max()) * 1e-3, 1)});
    }
    const util::LatencyHistogram& storm = run.storm;
    table.add_row({run.strategy, "storm", "power",
                   std::to_string(storm.count()), quantile_cell(storm, 0.50),
                   quantile_cell(storm, 0.99), quantile_cell(storm, 0.999),
                   util::fmt_fixed(static_cast<double>(storm.max()) * 1e-3,
                                   1)});
  }
  std::cout << table.render() << "\n";

  for (const StrategyRun& run : runs)
    std::cout << "[throughput] " << run.strategy << ": "
              << util::fmt_fixed(
                     events_per_s(run.steady_events, run.steady_wall_s), 0)
              << " events/s sustained over "
              << util::fmt_fixed(run.steady_wall_s, 3) << " s\n";
  std::cout << "\n";

  // ------------------------------------------------- batch × threads sweep
  std::vector<BatchRun> batch_runs;
  util::TextTable sweep("batched application sweep (same workload)");
  sweep.set_header({"strategy", "threads", "batch", "steady ev/s", "speedup",
                    "storm ev/s", "coalesced"});
  for (const std::string& strategy : strategies) {
    for (const std::size_t threads : recolor_threads) {
      // Only rank-bounded BBB has the recolor_threads knob; re-running other
      // strategies at threads>1 would duplicate their serial numbers.
      if (threads != 1 && strategy.rfind("bbb", 0) != 0) continue;
      double base_rate = 0.0;
      for (const std::size_t batch : batch_sizes) {
        const BatchRun run = run_batched(strategy, workload, batch, threads);
        const double steady_rate =
            events_per_s(run.steady_events, run.steady_wall_s);
        if (batch == batch_sizes.front()) base_rate = steady_rate;
        sweep.add_row(
            {run.strategy, std::to_string(run.threads),
             std::to_string(run.batch), util::fmt_fixed(steady_rate, 0),
             base_rate > 0.0 ? util::fmt_fixed(steady_rate / base_rate, 2) + "x"
                             : "-",
             util::fmt_fixed(events_per_s(run.storm_events, run.storm_wall_s),
                             0),
             std::to_string(run.coalesced_batches)});
        batch_runs.push_back(run);
      }
    }
  }
  std::cout << sweep.render() << "\n";

  // --------------------------------------------- measurements (check/append)
  std::vector<bench::Measurement> measurements;
  for (const StrategyRun& run : runs) {
    for (Kind kind : {Kind::kJoin, Kind::kLeave, Kind::kMove, Kind::kPower}) {
      const util::LatencyHistogram& h =
          run.steady[static_cast<std::size_t>(kind)];
      if (h.count() == 0) continue;
      bench::Measurement m;
      m.name = std::string("bench.serve.steady.") + sim::to_string(kind) +
               "." + run.strategy;
      m.wall_s = h.mean() * static_cast<double>(h.count()) * 1e-9;
      m.p50_us = h.quantile(0.50) * 1e-3;
      m.p99_us = h.quantile(0.99) * 1e-3;
      m.p999_us = h.quantile(0.999) * 1e-3;
      measurements.push_back(std::move(m));
    }
    bench::Measurement throughput;
    throughput.name = "bench.serve.steady.throughput." + run.strategy;
    throughput.wall_s = run.steady_wall_s;
    throughput.events_per_s =
        events_per_s(run.steady_events, run.steady_wall_s);
    measurements.push_back(std::move(throughput));

    bench::Measurement storm;
    storm.name = "bench.serve.storm.power." + run.strategy;
    storm.wall_s =
        run.storm.mean() * static_cast<double>(run.storm.count()) * 1e-9;
    storm.p50_us = run.storm.quantile(0.50) * 1e-3;
    storm.p99_us = run.storm.quantile(0.99) * 1e-3;
    storm.p999_us = run.storm.quantile(0.999) * 1e-3;
    measurements.push_back(std::move(storm));
  }
  for (const BatchRun& run : batch_runs) {
    bench::Measurement steady;
    steady.name = "bench.serve.batch.steady.b" + std::to_string(run.batch) +
                  "." + run.strategy + run.name_suffix();
    steady.wall_s = run.steady_wall_s;
    steady.events_per_s = events_per_s(run.steady_events, run.steady_wall_s);
    measurements.push_back(std::move(steady));

    bench::Measurement storm;
    storm.name = "bench.serve.batch.storm.b" + std::to_string(run.batch) +
                 "." + run.strategy + run.name_suffix();
    storm.wall_s = run.storm_wall_s;
    storm.events_per_s = events_per_s(run.storm_events, run.storm_wall_s);
    measurements.push_back(std::move(storm));
  }

  if (check) {
    std::cout << "checking against " << check_path << " (factor "
              << util::fmt_fixed(check_factor, 2) << ")\n";
    const bench::CheckResult outcome =
        bench::check_measurements(trajectory, measurements, check_factor);
    if (outcome.compared == 0 && outcome.skipped == 0)
      std::cout << "serve check: FAIL (no measurement had a baseline)\n";
    else
      std::cout << (outcome.pass() ? "serve check: PASS\n"
                                   : "serve check: FAIL\n");
    return outcome.pass() ? 0 : 1;
  }

  if (!options.get_bool("append", false)) return 0;

  if (trajectory.empty() && !bench::read_file(out_path).empty()) {
    std::cerr << out_path
              << " exists but is not a recognizable trajectory; refusing to "
                 "overwrite\n";
    return 1;
  }

  bench::TrajectoryEntry entry;
  entry.label = options.get("label", "serve-latency");
  std::ostringstream config;
  config << "{\"events\": " << events << ", \"target_live\": " << target_live
         << ", \"storm_rounds\": " << storm_rounds << ", \"seed\": " << seed
         << ", \"batch_sizes\": [";
  for (std::size_t i = 0; i < batch_sizes.size(); ++i)
    config << (i ? ", " : "") << batch_sizes[i];
  config << "], \"recolor_threads\": [";
  for (std::size_t i = 0; i < recolor_threads.size(); ++i)
    config << (i ? ", " : "") << recolor_threads[i];
  config << "]";
  // Mark single-core recordings so throughput gates on differently-sized
  // machines skip them (bench::check_measurements).
  if (std::thread::hardware_concurrency() <= 1)
    config << ", \"single_core\": true";
  config << "}";
  entry.config_json = config.str();
  entry.benchmarks = measurements;
  trajectory.push_back(std::move(entry));

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 1;
  }
  bench::write_trajectory(out, trajectory);
  std::cout << "[json] wrote " << out_path << " (" << trajectory.size()
            << " entries)\n";
  return 0;
}
