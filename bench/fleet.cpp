// Fleet orchestration study: the same small experiment grid is run
// in-process (the golden result) and then over TCP worker-agent fleets of
// increasing size, asserting byte-identical merged CSVs at every agent
// count and measuring aggregate throughput in work units per second.
//
// This is the `bench.fleet.*` measurement family: unlike the figure
// sweeps (which measure the simulation), this harness measures the
// orchestration substrate itself — dispatch latency hiding, capacity
// weighting, and the cost of the shard round-trip.  Units/s lands in
// `events_per_s` so the shared trajectory gate treats a collapse as a
// regression; names carry the agent count ("@a3") so resized fleets skip
// rather than compare (bench::check_measurements).
//
// Modes / options:
//   --agents=LIST     fleet sizes to run (default 1,3; always includes 1 so
//                     the scaling baseline exists)
//   --capacity=C      advertised capacity of every self-spawned agent
//                     (default 1)
//   --units=M         work units to plan (default 12)
//   --trials=N        Monte-Carlo trials per grid point (default 48)
//   --ns/--factors/--strategies/--seed   the experiment grid (small defaults)
//   --die-after=K     failure injection: the first agent of every fleet run
//                     drops its connection after K results (the merged CSV
//                     must still match the golden bytes)
//   --smoke           CI-sized run (fewer trials and units)
//   --check=FILE      compare units/s against the committed trajectory
//   --check-factor=F  allowed slowdown for --check (default 3)
//   --append --label=NAME --out=FILE    append a trajectory entry
//
// The binary doubles as the fleet worker agent (--worker-agent=HOST:PORT)
// and as the per-unit worker (--run-unit=...), exactly like every other
// fleet-aware harness.

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "../bench/bench_util.hpp"
#include "../bench/trajectory.hpp"
#include "sim/experiment.hpp"
#include "sim/experiment_io.hpp"
#include "sim/orchestrator.hpp"
#include "util/options.hpp"
#include "util/remote_pool.hpp"
#include "util/subprocess.hpp"
#include "util/table.hpp"

namespace {

using namespace minim;

constexpr const char* kTag = "fleet";

struct FleetConfig {
  std::vector<double> ns;
  std::vector<double> factors;
  std::vector<std::string> strategies;
  std::vector<double> agents;
  std::uint32_t capacity = 1;
  std::size_t units = 12;
  std::size_t die_after = 0;
  sim::ExperimentOptions run;
};

FleetConfig config_from(const util::Options& options) {
  const bool smoke = options.get_bool("smoke", false);
  FleetConfig config;
  config.ns = bench::double_list_from(options, "ns", {20, 30});
  config.factors = bench::double_list_from(options, "factors", {2.0, 3.0});
  config.strategies =
      bench::string_list_from(options, "strategies", {"minim", "cp"});
  config.agents = bench::double_list_from(options, "agents",
                                          smoke ? std::vector<double>{1, 2}
                                                : std::vector<double>{1, 3});
  config.capacity = static_cast<std::uint32_t>(
      std::max<long long>(1, options.get_int("capacity", 1)));
  config.units = static_cast<std::size_t>(
      options.get_int("units", smoke ? 6 : 12));
  config.die_after =
      static_cast<std::size_t>(options.get_int("die-after", 0));
  config.run.trials = static_cast<std::size_t>(
      options.get_int("trials", smoke ? 12 : 48));
  config.run.seed = static_cast<std::uint64_t>(options.get_int("seed", 2001));
  // Workers run one unit at a time; the driver machine also hosts the
  // agents, so per-worker threading stays serial.
  config.run.threads = 1;
  return config;
}

sim::Experiment make_experiment(const FleetConfig& config) {
  sim::ExperimentGrid grid;
  grid.base.kind = sim::ScenarioKind::kPower;
  grid.axes.push_back(sim::GridAxis{
      "n", config.ns, [](sim::ScenarioSpec& spec, double x) {
        spec.workload.n = static_cast<std::size_t>(x);
      }});
  grid.axes.push_back(sim::GridAxis{
      "raise_factor", config.factors,
      [](sim::ScenarioSpec& spec, double x) { spec.raise_factor = x; }});
  grid.strategies = config.strategies;
  return sim::Experiment(std::move(grid));
}

std::string csv_bytes(const sim::ExperimentResult& result) {
  std::ostringstream out;
  sim::write_experiment_csv(result, out);
  return out.str();
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct FleetRun {
  std::size_t agents = 0;
  std::size_t units = 0;
  double wall_s = 0.0;
  std::size_t redispatched = 0;
  std::size_t agents_lost = 0;
};

/// One fleet pass: self-spawn `agents` loopback agents, run the whole grid
/// over them, and require the merged CSV to match `golden` byte for byte.
FleetRun run_fleet(const FleetConfig& config, const sim::Experiment& experiment,
                   const std::string& golden, std::size_t agents) {
  const std::string scratch =
      "fleet-bench-scratch-a" + std::to_string(agents);

  util::RemotePoolOptions pool_options;
  pool_options.self_spawn = agents;
  pool_options.agent_capacity = config.capacity;
  pool_options.scratch_dir = scratch + "/agents";
  // The injection needs a survivor to requeue onto; a 1-agent fleet would
  // (correctly) abort the run instead, so keep its pass clean.
  if (config.die_after > 0 && agents > 1)
    pool_options.first_agent_extra_args.push_back(
        "--agent-die-after=" + std::to_string(config.die_after));
  util::RemotePool pool(pool_options);

  sim::OrchestratorOptions orchestration;
  orchestration.experiment =
      std::string(kTag) + "#" +
      bench::experiment_fingerprint(experiment, config.run);
  orchestration.workers = std::max<std::size_t>(
      1, agents * static_cast<std::size_t>(config.capacity));
  orchestration.units = config.units;
  orchestration.scratch_dir = scratch;
  orchestration.pool = &pool;

  const std::string self = util::self_exe_path();
  if (self.empty()) {
    std::cerr << "cannot locate this executable to self-spawn agents\n";
    std::exit(2);
  }
  const auto list_arg = [](const char* key, const std::vector<double>& xs) {
    std::ostringstream os;
    os << "--" << key << "=";
    for (std::size_t i = 0; i < xs.size(); ++i)
      os << (i ? "," : "") << util::fmt_fixed(xs[i], 3);
    return os.str();
  };
  std::ostringstream strategies;
  for (std::size_t i = 0; i < config.strategies.size(); ++i)
    strategies << (i ? "," : "") << config.strategies[i];
  const std::vector<std::string> base_args{
      self,
      "--trials=" + std::to_string(config.run.trials),
      "--seed=" + std::to_string(config.run.seed),
      list_arg("ns", config.ns),
      list_arg("factors", config.factors),
      "--strategies=" + strategies.str()};

  sim::Orchestrator orchestrator(experiment.points().size(),
                                 config.run.trials, config.run.seed,
                                 orchestration);
  FleetRun stats;
  stats.agents = agents;
  stats.units = orchestrator.units().size();
  const auto start = std::chrono::steady_clock::now();
  const sim::ExperimentResult merged = orchestrator.run(
      [&base_args](const sim::WorkUnit& unit, const std::string& out_path) {
        std::vector<std::string> args = base_args;
        args.push_back("--run-unit=" + std::to_string(unit.point_begin) + "/" +
                       std::to_string(unit.point_count) + "/" +
                       std::to_string(unit.trial_begin) + "/" +
                       std::to_string(unit.trial_count));
        args.push_back("--unit-out=" + out_path);
        args.push_back("--unit-id=" + std::to_string(unit.id));
        args.push_back("--unit-tag=" + std::string(kTag));
        return args;
      });
  stats.wall_s = seconds_since(start);
  stats.redispatched = pool.stats().redispatched;
  stats.agents_lost = pool.stats().agents_lost;

  if (csv_bytes(merged) != golden) {
    std::cerr << "FAIL: fleet of " << agents
              << " agent(s) merged to different bytes than the in-process "
                 "run\n";
    std::exit(1);
  }

  std::error_code ignored;
  std::filesystem::remove_all(scratch, ignored);
  return stats;
}

double units_per_s(const FleetRun& run) {
  return run.wall_s > 0.0 ? static_cast<double>(run.units) / run.wall_s : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options options(argc, argv);
  // A fleet agent serves units for a remote driver; nothing else in this
  // harness applies to that invocation.
  if (bench::is_fleet_agent(options)) return bench::run_fleet_agent(options);

  const FleetConfig config = config_from(options);
  const sim::Experiment experiment = make_experiment(config);
  if (bench::run_worker_unit(options, experiment, config.run, kTag)) return 0;

  const std::string out_path = options.get("out", "BENCH_sweep.json");
  const bool check = options.has("check");
  const std::string check_path = options.get("check", out_path);
  const double check_factor = options.get_double("check-factor", 3.0);
  std::vector<bench::TrajectoryEntry> trajectory =
      bench::load_trajectory(check ? check_path : out_path);

  std::cout << "Fleet study: " << experiment.points().size() << " grid points"
            << " x " << config.run.trials << " trials, " << config.units
            << " units, capacity " << config.capacity << " per agent\n";

  // The golden bytes every fleet size must reproduce, and the serial
  // reference wall clock.
  const auto serial_start = std::chrono::steady_clock::now();
  const std::string golden = csv_bytes(experiment.run(config.run));
  const double serial_wall_s = seconds_since(serial_start);
  std::cout << "  in-process reference: " << util::fmt_fixed(serial_wall_s, 2)
            << " s\n";

  std::vector<FleetRun> runs;
  for (double raw : config.agents) {
    const auto agents = static_cast<std::size_t>(raw);
    if (agents == 0) continue;
    runs.push_back(run_fleet(config, experiment, golden, agents));
    const FleetRun& run = runs.back();
    std::cout << "  fleet of " << agents << ": "
              << util::fmt_fixed(run.wall_s, 2) << " s, "
              << util::fmt_fixed(units_per_s(run), 1) << " units/s ("
              << run.redispatched << " speculative re-dispatch(es), "
              << run.agents_lost << " agent(s) lost), merged CSV identical\n";
  }
  if (runs.empty()) {
    std::cerr << "no agent counts to run (--agents)\n";
    return 2;
  }

  util::TextTable table("Fleet throughput (byte-identical merges)");
  table.set_header({"agents", "units", "wall s", "units/s", "vs @a1"});
  const double base_rate = units_per_s(runs.front());
  for (const FleetRun& run : runs)
    table.add_row({std::to_string(run.agents), std::to_string(run.units),
                   util::fmt_fixed(run.wall_s, 2),
                   util::fmt_fixed(units_per_s(run), 1),
                   base_rate > 0.0
                       ? util::fmt_fixed(units_per_s(run) / base_rate, 2) + "x"
                       : "-"});
  std::cout << table.render() << "\n";

  std::vector<bench::Measurement> measurements;
  for (const FleetRun& run : runs) {
    bench::Measurement m;
    m.name = "bench.fleet.grid@a" + std::to_string(run.agents);
    m.wall_s = run.wall_s;
    m.events_per_s = units_per_s(run);
    measurements.push_back(std::move(m));
  }

  if (check) {
    std::cout << "checking against " << check_path << " (factor "
              << util::fmt_fixed(check_factor, 2) << ")\n";
    const bench::CheckResult outcome =
        bench::check_measurements(trajectory, measurements, check_factor);
    if (outcome.compared == 0 && outcome.skipped == 0)
      std::cout << "fleet check: FAIL (no measurement had a baseline)\n";
    else
      std::cout << (outcome.pass() ? "fleet check: PASS\n"
                                   : "fleet check: FAIL\n");
    return outcome.pass() ? 0 : 1;
  }

  if (!options.get_bool("append", false)) return 0;

  if (trajectory.empty() && !bench::read_file(out_path).empty()) {
    std::cerr << out_path
              << " exists but is not a recognizable trajectory; refusing to "
                 "overwrite\n";
    return 1;
  }

  bench::TrajectoryEntry entry;
  entry.label = options.get("label", "fleet");
  std::ostringstream json;
  json << "{\"trials\": " << config.run.trials
       << ", \"units\": " << config.units << ", \"seed\": " << config.run.seed
       << ", \"capacity\": " << config.capacity << ", \"agents\": [";
  for (std::size_t i = 0; i < runs.size(); ++i)
    json << (i ? ", " : "") << runs[i].agents;
  json << "]";
  // Mark single-core recordings so throughput gates on differently-sized
  // machines skip them (bench::check_measurements).
  if (std::thread::hardware_concurrency() <= 1)
    json << ", \"single_core\": true";
  json << "}";
  entry.config_json = json.str();
  entry.benchmarks = measurements;
  trajectory.push_back(std::move(entry));

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 1;
  }
  bench::write_trajectory(out, trajectory);
  std::cout << "[json] wrote " << out_path << " (" << trajectory.size()
            << " entries)\n";
  return 0;
}
