// Distributed-protocol overhead: messages, radio transmissions (hop-count)
// and payload volume per event for the Minim protocols, as a function of
// network density — quantifying the paper's "communication only local to
// the event" claim.  Also benchmarks gossip compaction (the future-work
// extension): how many colors it claws back after churn, and how many
// rounds it needs.

#include <iostream>

#include "core/minim.hpp"
#include "net/constraints.hpp"
#include "proto/distributed_cp.hpp"
#include "proto/distributed_minim.hpp"
#include "strategies/gossip.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace minim;

struct World {
  net::AdhocNetwork network{100.0, 100.0};
  net::CodeAssignment assignment;
  std::vector<net::NodeId> ids;
};

World build(std::size_t n, double min_r, double max_r, util::Rng& rng) {
  World world;
  core::MinimStrategy minim;
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = world.network.add_node(
        {{rng.uniform(0, 100), rng.uniform(0, 100)}, rng.uniform(min_r, max_r)});
    minim.on_join(world.network, world.assignment, id);
    world.ids.push_back(id);
  }
  return world;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options options(argc, argv);
  const auto runs = static_cast<std::size_t>(
      options.get_int("runs", options.get_bool("fast", false) ? 10 : 50));
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1234));

  std::cout << "=== Distributed protocol overhead (Minim) ===\n\n";

  util::TextTable join_table("Join protocol cost vs density (N=60)");
  join_table.set_header({"avg range", "in-degree", "messages", "radio tx", "payload",
                         "rounds", "recodings"});
  for (const double avg_range : {10.0, 20.0, 30.0, 40.0}) {
    util::RunningStats degree;
    util::RunningStats messages;
    util::RunningStats transmissions;
    util::RunningStats payload;
    util::RunningStats rounds;
    util::RunningStats recodings;
    for (std::size_t run = 0; run < runs; ++run) {
      util::Rng rng = util::Rng::for_stream(seed, run);
      World world = build(60, avg_range - 2.5, avg_range + 2.5, rng);
      const auto joiner = world.network.add_node(
          {{rng.uniform(0, 100), rng.uniform(0, 100)},
           rng.uniform(avg_range - 2.5, avg_range + 2.5)});
      proto::DistributedMinim protocol;
      const auto result = protocol.join(world.network, world.assignment, joiner);
      degree.add(static_cast<double>(world.network.heard_by(joiner).size()));
      messages.add(static_cast<double>(result.cost.messages));
      transmissions.add(static_cast<double>(result.cost.hop_count));
      payload.add(static_cast<double>(result.cost.payload_items));
      rounds.add(static_cast<double>(result.cost.rounds));
      recodings.add(static_cast<double>(result.report.recodings()));
    }
    join_table.add_row({util::fmt_fixed(avg_range, 1), util::fmt_fixed(degree.mean(), 1),
                        util::fmt_fixed(messages.mean(), 1),
                        util::fmt_fixed(transmissions.mean(), 1),
                        util::fmt_fixed(payload.mean(), 1),
                        util::fmt_fixed(rounds.mean(), 1),
                        util::fmt_fixed(recodings.mean(), 2)});
  }
  std::cout << join_table.render() << "\n";

  // Head-to-head: Minim's locally-centralized exchange vs CP's
  // peer-coordinated rounds, on identical joins.
  std::cout << "=== Minim vs CP distributed cost per join (N=60) ===\n\n";
  util::TextTable duel("Same joins, both protocols (means over runs)");
  duel.set_header({"avg range", "minim msgs", "cp msgs", "minim radio tx",
                   "cp radio tx", "minim rounds", "cp rounds"});
  for (const double avg_range : {15.0, 25.0, 35.0}) {
    util::RunningStats mm;
    util::RunningStats cm;
    util::RunningStats mt;
    util::RunningStats ct;
    util::RunningStats mr;
    util::RunningStats cr;
    for (std::size_t run = 0; run < runs; ++run) {
      util::Rng rng = util::Rng::for_stream(seed + 99, run);
      World world = build(60, avg_range - 2.5, avg_range + 2.5, rng);
      const net::NodeConfig config{{rng.uniform(0, 100), rng.uniform(0, 100)},
                                   rng.uniform(avg_range - 2.5, avg_range + 2.5)};
      // Two identical copies of the world, one per protocol.
      auto net_m = world.network;
      auto asg_m = world.assignment;
      const auto id_m = net_m.add_node(config);
      proto::DistributedMinim minim_protocol;
      const auto rm = minim_protocol.join(net_m, asg_m, id_m);

      auto net_c = world.network;
      auto asg_c = world.assignment;
      const auto id_c = net_c.add_node(config);
      proto::DistributedCp cp_protocol;
      const auto rc = cp_protocol.join(net_c, asg_c, id_c);

      mm.add(static_cast<double>(rm.cost.messages));
      cm.add(static_cast<double>(rc.cost.messages));
      mt.add(static_cast<double>(rm.cost.hop_count));
      ct.add(static_cast<double>(rc.cost.hop_count));
      mr.add(static_cast<double>(rm.cost.rounds));
      cr.add(static_cast<double>(rc.cost.rounds));
    }
    duel.add_row({util::fmt_fixed(avg_range, 1), util::fmt_fixed(mm.mean(), 1),
                  util::fmt_fixed(cm.mean(), 1), util::fmt_fixed(mt.mean(), 1),
                  util::fmt_fixed(ct.mean(), 1), util::fmt_fixed(mr.mean(), 1),
                  util::fmt_fixed(cr.mean(), 1)});
  }
  std::cout << duel.render() << "\n";

  std::cout << "=== Gossip color compaction (paper future work) ===\n\n";
  util::TextTable gossip_table("Compaction after churn (N=80 joins, half leave)");
  gossip_table.set_header(
      {"leave fraction", "max color before", "max color after", "recodings", "rounds"});
  for (const double leave_fraction : {0.25, 0.5, 0.75}) {
    util::RunningStats before;
    util::RunningStats after;
    util::RunningStats recodings;
    util::RunningStats rounds;
    for (std::size_t run = 0; run < runs; ++run) {
      util::Rng rng = util::Rng::for_stream(seed + 17, run);
      World world = build(80, 20.5, 30.5, rng);
      const auto leavers = static_cast<std::size_t>(
          leave_fraction * static_cast<double>(world.ids.size()));
      for (std::size_t i = 0; i < leavers; ++i) {
        const std::size_t pick = rng.below(world.ids.size());
        world.network.remove_node(world.ids[pick]);
        world.assignment.clear(world.ids[pick]);
        world.ids.erase(world.ids.begin() + static_cast<std::ptrdiff_t>(pick));
      }
      const auto result =
          strategies::gossip_compact(world.network, world.assignment);
      before.add(result.max_color_before);
      after.add(result.max_color_after);
      recodings.add(static_cast<double>(result.recodings));
      rounds.add(static_cast<double>(result.rounds));
    }
    gossip_table.add_row(
        {util::fmt_fixed(leave_fraction, 2), util::fmt_fixed(before.mean(), 2),
         util::fmt_fixed(after.mean(), 2), util::fmt_fixed(recodings.mean(), 1),
         util::fmt_fixed(rounds.mean(), 1)});
  }
  std::cout << gossip_table.render() << "\n";
  return 0;
}
