// Reproduces Figure 11 (Simulation Results - Node Power Increase).
//
// Experiment (paper Section 5.2): build the Section 5.1 network (N=100,
// minr=20.5, maxr=30.5) with each strategy, then raise the transmission
// range of a random half of the nodes by `raisefactor`.  Metrics are deltas
// relative to the post-join state: Δ(max color index) and Δ(#recodings).
//   (a) Δ(max color) vs raisefactor  - Minim/CP/BBB
//   (b) Δ(#recodings) vs raisefactor - Minim/CP/BBB
//   (c) Δ(#recodings) vs raisefactor - Minim/CP
//
// Expected shape (paper): CP slightly beats Minim on Δ(max color) — Minim's
// power-increase rule recodes n with the lowest *available* color and never
// touches anyone else — while Minim wins Δ(#recodings) by a wide margin.

#include <iostream>

#include "../bench/bench_util.hpp"
#include "sim/sweeps.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace minim;
  const util::Options options(argc, argv);
  // A fleet agent serves units for a remote driver; nothing else in this
  // harness applies to that invocation.
  if (bench::is_fleet_agent(options)) return bench::run_fleet_agent(options);

  const std::vector<double> factors{1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0, 5.5, 6.0};

  // `cp-exact` is our reproduction probe: CP with its color rule ported
  // faithfully to the directed model (avoid true CA1/CA2 partners instead
  // of the whole 2-hop ball).  See EXPERIMENTS.md for why Fig 11(a)'s
  // Minim-vs-CP ordering is sensitive to this choice.
  const auto sweep =
      bench::sweep_options_from(options, {"minim", "cp", "cp-exact", "bbb"});
  const sim::Experiment experiment(sim::grid_power_vs_raise_factor(factors, sweep));
  const sim::ExperimentOptions run = sim::experiment_options_from(sweep);

  if (bench::is_worker(options)) {
    if (bench::run_worker_unit(options, experiment, run, "fig11")) return 0;
    std::cerr << "unknown --unit-tag for fig11\n";
    return 2;
  }

  std::cout << "=== Figure 11: node power increase ===\n"
            << "N=100 joins, then half the nodes raise range by raisefactor; "
               "delta metrics vs post-join state.\n\n";

  {
    const auto points = sim::sweep_points_from(
        bench::run_experiment_cli(options, experiment, run, "fig11"),
        /*delta_metrics=*/true);
    bench::print_series("Fig 11(a): delta max color index vs raisefactor",
                        "raisefactor", points, bench::Metric::kColor, options,
                        "fig11a");
    bench::print_series("Fig 11(b): delta total recodings vs raisefactor",
                        "raisefactor", points, bench::Metric::kRecodings, options,
                        "fig11b");
    // (c) is the minim/cp sub-series of the same sweep (strategy lanes are
    // independent) — filtered, not re-simulated.
    const auto distributed = bench::filter_strategies(points, {"minim", "cp"});
    bench::print_series(
        "Fig 11(c): delta total recodings vs raisefactor (distributed only)",
        "raisefactor", distributed, bench::Metric::kRecodings, options, "fig11c");
  }
  return 0;
}
