// Reproduces Figure 12 (Simulation Results - Node Movement).
//
// Experiment (paper Section 5.3): build the Section 5.1 network with N=40,
// minr=20.5, maxr=30.5; then run RoundNo rounds in which every node moves
// once, one by one, in a uniform random direction by a displacement uniform
// in [0, maxdisp] (clamped to the field).  Delta metrics vs post-join state.
//   (a) Δ(#recodings) vs maxdisp (RoundNo=1)  - Minim/CP
//   (b) Δ(max color) vs RoundNo (maxdisp=40)  - Minim/CP/BBB
//   (c) Δ(#recodings) vs RoundNo              - Minim/CP/BBB
//   (d) Δ(#recodings) vs RoundNo              - Minim/CP
//
// Expected shape (paper): Minim trails CP by at most a couple of colors in
// (b) but saves hundreds of recodings by round 10 in (c,d).

#include <iostream>

#include "../bench/bench_util.hpp"
#include "sim/sweeps.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace minim;
  const util::Options options(argc, argv);
  // A fleet agent serves units for a remote driver; nothing else in this
  // harness applies to that invocation.
  if (bench::is_fleet_agent(options)) return bench::run_fleet_agent(options);

  const std::vector<double> displacements{0, 10, 20, 30, 40, 50, 60, 70, 80};
  const std::vector<double> rounds{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};

  const auto distributed_sweep = bench::sweep_options_from(options, {"minim", "cp"});
  const auto all_sweep = bench::sweep_options_from(options, {"minim", "cp", "bbb"});
  const sim::Experiment vs_disp(
      sim::grid_move_vs_max_displacement(displacements, distributed_sweep));
  const sim::Experiment vs_rounds(sim::grid_move_vs_rounds(rounds, all_sweep));
  const sim::Experiment vs_rounds_dist(
      sim::grid_move_vs_rounds(rounds, distributed_sweep));
  const sim::ExperimentOptions run = sim::experiment_options_from(all_sweep);

  if (bench::is_worker(options)) {
    if (bench::run_worker_unit(options, vs_disp, run, "fig12-disp")) return 0;
    if (bench::run_worker_unit(options, vs_rounds, run, "fig12-rounds")) return 0;
    if (bench::run_worker_unit(options, vs_rounds_dist, run, "fig12-rounds-dist"))
      return 0;
    std::cerr << "unknown --unit-tag for fig12\n";
    return 2;
  }

  std::cout << "=== Figure 12: node movement ===\n"
            << "N=40 joins, then movement rounds (every node moves once per "
               "round); delta metrics vs post-join state.\n\n";

  {
    const auto points = sim::sweep_points_from(
        bench::run_experiment_cli(options, vs_disp, run, "fig12-disp"),
        /*delta_metrics=*/true);
    bench::print_series("Fig 12(a): delta recodings vs maxdisp (RoundNo=1)",
                        "maxdisp", points, bench::Metric::kRecodings, options,
                        "fig12a");
  }
  {
    const auto points = sim::sweep_points_from(
        bench::run_experiment_cli(options, vs_rounds, run, "fig12-rounds"),
        /*delta_metrics=*/true);
    bench::print_series("Fig 12(b): delta max color vs RoundNo (maxdisp=40)",
                        "RoundNo", points, bench::Metric::kColor, options, "fig12b");
    bench::print_series("Fig 12(c): delta recodings vs RoundNo", "RoundNo", points,
                        bench::Metric::kRecodings, options, "fig12c");
  }
  {
    const auto points = sim::sweep_points_from(
        bench::run_experiment_cli(options, vs_rounds_dist, run, "fig12-rounds-dist"),
        /*delta_metrics=*/true);
    bench::print_series("Fig 12(d): delta recodings vs RoundNo (distributed only)",
                        "RoundNo", points, bench::Metric::kRecodings, options,
                        "fig12d");
  }
  return 0;
}
