// Reproduces Figure 12 (Simulation Results - Node Movement).
//
// Experiment (paper Section 5.3): build the Section 5.1 network with N=40,
// minr=20.5, maxr=30.5; then run RoundNo rounds in which every node moves
// once, one by one, in a uniform random direction by a displacement uniform
// in [0, maxdisp] (clamped to the field).  Delta metrics vs post-join state.
//   (a) Δ(#recodings) vs maxdisp (RoundNo=1)  - Minim/CP
//   (b) Δ(max color) vs RoundNo (maxdisp=40)  - Minim/CP/BBB
//   (c) Δ(#recodings) vs RoundNo              - Minim/CP/BBB
//   (d) Δ(#recodings) vs RoundNo              - Minim/CP
//
// Expected shape (paper): Minim trails CP by at most a couple of colors in
// (b) but saves hundreds of recodings by round 10 in (c,d).

#include <iostream>

#include "../bench/bench_util.hpp"
#include "sim/sweeps.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace minim;
  const util::Options options(argc, argv);

  std::cout << "=== Figure 12: node movement ===\n"
            << "N=40 joins, then movement rounds (every node moves once per "
               "round); delta metrics vs post-join state.\n\n";

  const std::vector<double> displacements{0, 10, 20, 30, 40, 50, 60, 70, 80};
  const std::vector<double> rounds{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};

  {
    auto sweep = bench::sweep_options_from(options, {"minim", "cp"});
    const auto points = sim::sweep_move_vs_max_displacement(displacements, sweep);
    bench::print_series("Fig 12(a): delta recodings vs maxdisp (RoundNo=1)",
                        "maxdisp", points, bench::Metric::kRecodings, options,
                        "fig12a");
  }
  {
    auto sweep = bench::sweep_options_from(options, {"minim", "cp", "bbb"});
    const auto points = sim::sweep_move_vs_rounds(rounds, sweep);
    bench::print_series("Fig 12(b): delta max color vs RoundNo (maxdisp=40)",
                        "RoundNo", points, bench::Metric::kColor, options, "fig12b");
    bench::print_series("Fig 12(c): delta recodings vs RoundNo", "RoundNo", points,
                        bench::Metric::kRecodings, options, "fig12c");
  }
  {
    auto sweep = bench::sweep_options_from(options, {"minim", "cp"});
    const auto points = sim::sweep_move_vs_rounds(rounds, sweep);
    bench::print_series("Fig 12(d): delta recodings vs RoundNo (distributed only)",
                        "RoundNo", points, bench::Metric::kRecodings, options,
                        "fig12d");
  }
  return 0;
}
