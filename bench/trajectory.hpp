#pragma once

// Shared I/O for BENCH_sweep.json — the append-only perf *trajectory*
// (schema v2) that records each optimization's before/after.  Extracted from
// perf_trajectory.cpp so the large-N harness appends to and gates against
// the same file.
//
// The file is machine-written by these harnesses only, so a tolerant scan
// for the keys we emit is enough — no JSON library in the tree.  v3 of the
// measurement record adds optional `peak_rss_mb` and `bytes_per_node`
// fields (emitted only when set); readers of older files see them as 0.
// The serving-latency harness (serve_latency.cpp) adds optional `p50_us`,
// `p99_us`, `p999_us` and `events_per_s` under the same rule.

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/table.hpp"

namespace minim::bench {

struct Measurement {
  std::string name;
  double wall_s = 0.0;
  double peak_rss_mb = 0.0;     ///< process VmHWM after the run; 0 = not recorded
  double bytes_per_node = 0.0;  ///< engine footprint / node count; 0 = not recorded
  // Serving-latency fields (bench.serve.*); 0 = not recorded.
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double events_per_s = 0.0;
};

struct TrajectoryEntry {
  std::string label;
  std::string config_json;  ///< the entry's "config" object, verbatim
  std::vector<Measurement> benchmarks;
};

inline std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Value of `"key": "..."` at/after `from`; empty when absent.
inline std::string scan_string(const std::string& text, const std::string& key,
                               std::size_t from, std::size_t until) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle, from);
  if (at == std::string::npos || at >= until) return "";
  const std::size_t open = text.find('"', at + needle.size());
  if (open == std::string::npos) return "";
  const std::size_t close = text.find('"', open + 1);
  if (close == std::string::npos) return "";
  return text.substr(open + 1, close - open - 1);
}

/// The balanced `{...}` of `"key": {` at/after `from`; empty when absent.
inline std::string scan_object(const std::string& text, const std::string& key,
                               std::size_t from, std::size_t until) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle, from);
  if (at == std::string::npos || at >= until) return "";
  const std::size_t open = text.find('{', at + needle.size());
  if (open == std::string::npos) return "";
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '{') ++depth;
    if (text[i] == '}' && --depth == 0) return text.substr(open, i - open + 1);
  }
  return "";
}

/// Value of `"key": <number>` inside [from, until); 0 when absent.
inline double scan_number(const std::string& text, const std::string& key,
                          std::size_t from, std::size_t until) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle, from);
  if (at == std::string::npos || at >= until) return 0.0;
  return std::strtod(text.c_str() + at + needle.size(), nullptr);
}

/// Every measurement record in [from, until).
inline std::vector<Measurement> scan_benchmarks(const std::string& text,
                                                std::size_t from, std::size_t until) {
  std::vector<Measurement> out;
  std::size_t cursor = from;
  while (true) {
    const std::size_t at = text.find("\"name\":", cursor);
    if (at == std::string::npos || at >= until) break;
    std::size_t record_end = text.find("\"name\":", at + 1);
    if (record_end == std::string::npos || record_end > until) record_end = until;
    Measurement m;
    m.name = scan_string(text, "name", at, record_end);
    // Bounded by record_end like the optional fields: a record missing
    // wall_s must not steal the next record's value.
    const std::size_t wall = text.find("\"wall_s\":", at);
    if (wall == std::string::npos || wall >= record_end) break;
    m.wall_s = std::strtod(text.c_str() + wall + 9, nullptr);
    m.peak_rss_mb = scan_number(text, "peak_rss_mb", at, record_end);
    m.bytes_per_node = scan_number(text, "bytes_per_node", at, record_end);
    m.p50_us = scan_number(text, "p50_us", at, record_end);
    m.p99_us = scan_number(text, "p99_us", at, record_end);
    m.p999_us = scan_number(text, "p999_us", at, record_end);
    m.events_per_s = scan_number(text, "events_per_s", at, record_end);
    out.push_back(std::move(m));
    cursor = wall + 9;
  }
  return out;
}

/// Parses a trajectory file (v2) or a single-measurement v1 file (upgraded
/// to one entry labeled "baseline").  Returns an empty list for missing or
/// unrecognized files.
inline std::vector<TrajectoryEntry> load_trajectory(const std::string& path) {
  const std::string text = read_file(path);
  std::vector<TrajectoryEntry> entries;
  if (text.empty()) return entries;
  const std::string schema = scan_string(text, "schema", 0, text.size());
  if (schema == "minim-bench-trajectory-v1") {
    TrajectoryEntry entry;
    entry.label = "baseline";
    entry.config_json = scan_object(text, "config", 0, text.size());
    entry.benchmarks = scan_benchmarks(text, 0, text.size());
    entries.push_back(std::move(entry));
    return entries;
  }
  if (schema != "minim-bench-trajectory-v2") return entries;
  std::size_t cursor = text.find("\"entries\":");
  while (cursor != std::string::npos) {
    const std::size_t at = text.find("\"label\":", cursor);
    if (at == std::string::npos) break;
    std::size_t until = text.find("\"label\":", at + 1);
    if (until == std::string::npos) until = text.size();
    TrajectoryEntry entry;
    entry.label = scan_string(text, "label", at, until);
    entry.config_json = scan_object(text, "config", at, until);
    entry.benchmarks = scan_benchmarks(text, at, until);
    entries.push_back(std::move(entry));
    cursor = until == text.size() ? std::string::npos : until;
  }
  return entries;
}

inline void write_trajectory(std::ostream& out,
                             const std::vector<TrajectoryEntry>& entries) {
  out << "{\n  \"schema\": \"minim-bench-trajectory-v2\",\n  \"entries\": [\n";
  for (std::size_t e = 0; e < entries.size(); ++e) {
    const TrajectoryEntry& entry = entries[e];
    out << "    {\n      \"label\": \"" << entry.label << "\",\n"
        << "      \"config\": " << entry.config_json << ",\n"
        << "      \"benchmarks\": [\n";
    for (std::size_t i = 0; i < entry.benchmarks.size(); ++i) {
      const Measurement& m = entry.benchmarks[i];
      out << "        {\"name\": \"" << m.name << "\", \"wall_s\": "
          << util::fmt_fixed(m.wall_s, 3);
      if (m.peak_rss_mb > 0.0)
        out << ", \"peak_rss_mb\": " << util::fmt_fixed(m.peak_rss_mb, 1);
      if (m.bytes_per_node > 0.0)
        out << ", \"bytes_per_node\": " << util::fmt_fixed(m.bytes_per_node, 1);
      if (m.p50_us > 0.0)
        out << ", \"p50_us\": " << util::fmt_fixed(m.p50_us, 2);
      if (m.p99_us > 0.0)
        out << ", \"p99_us\": " << util::fmt_fixed(m.p99_us, 2);
      if (m.p999_us > 0.0)
        out << ", \"p999_us\": " << util::fmt_fixed(m.p999_us, 2);
      if (m.events_per_s > 0.0)
        out << ", \"events_per_s\": " << util::fmt_fixed(m.events_per_s, 0);
      out << "}" << (i + 1 < entry.benchmarks.size() ? "," : "") << "\n";
    }
    out << "      ]\n    }" << (e + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

/// The most recent entry carrying a measurement named `name`; nullptr when
/// none.  The trajectory interleaves entries from different harnesses
/// (figure sweeps, large-N), so gates must look past entries that do not
/// cover their benchmarks.
inline const TrajectoryEntry* baseline_for(const std::vector<TrajectoryEntry>& entries,
                                           const std::string& name) {
  for (auto it = entries.rbegin(); it != entries.rend(); ++it)
    for (const Measurement& m : it->benchmarks)
      if (m.name == name) return &*it;
  return nullptr;
}

/// True when `entry` was recorded on a single-core machine (the recorder
/// annotates its config with `"single_core": true`).  Such entries carry no
/// meaningful "@tN" scaling measurements — hardware_concurrency() == 1
/// collapses the threads sweep to the serial column — so scaling gates must
/// skip them rather than compare against a degenerate baseline.
inline bool entry_single_core(const TrajectoryEntry& entry) {
  const std::size_t at = entry.config_json.find("\"single_core\":");
  if (at == std::string::npos) return false;
  const std::size_t value = entry.config_json.find_first_not_of(
      " \t", at + std::string("\"single_core\":").size());
  return value != std::string::npos &&
         entry.config_json.compare(value, 4, "true") == 0;
}

/// Outcome of one `check_measurements` run.
struct CheckResult {
  bool ok = true;          ///< no compared measurement regressed
  std::size_t compared = 0;
  /// Baseline existed but a rule suppressed the comparison (single-core
  /// scaling baselines, hardware-mismatched throughput baselines).  Kept
  /// separate from "no baseline" so callers can distinguish "everything
  /// legitimately skipped" from "the gate compared nothing at all".
  std::size_t skipped = 0;

  /// A gate that compared nothing gates nothing — fail unless every miss
  /// was a legitimate rule-based skip.
  bool pass() const { return ok && (compared > 0 || skipped > 0); }
};

/// The shared regression gate: compares `measurements` against the most
/// recent trajectory entry covering each name.
///
///   * wall_s regresses when measured > baseline * factor;
///   * events_per_s (throughput) regresses when measured < baseline / factor
///     — a throughput COLLAPSE, not just wall-clock noise;
///   * "@tN" scaling names skip single-core baselines (the baseline's
///     threads sweep collapsed to the serial column);
///   * throughput comparisons skip when the baseline's single-core
///     annotation disagrees with this machine — events/s across different
///     core counts measures the hardware, not the code;
///   * "bench.fleet.*@aK" names whose baseline exists only at a different
///     agent count skip as a counted rule (the fleet was resized — a config
///     change, not a regression), mirroring the "@tN" treatment.
///
/// Logs one line per measurement to `log` in the established --check style.
inline CheckResult check_measurements(
    const std::vector<TrajectoryEntry>& trajectory,
    const std::vector<Measurement>& measurements, double factor,
    std::ostream& log = std::cout) {
  const bool this_machine_single_core =
      std::thread::hardware_concurrency() <= 1;
  CheckResult result;
  for (const Measurement& m : measurements) {
    const TrajectoryEntry* entry = baseline_for(trajectory, m.name);
    if (entry == nullptr) {
      // Fleet measurements bake the agent count into the name
      // ("...@a<K>"); a baseline recorded at another agent count means the
      // fleet was resized, which is a deliberate config change.
      const std::size_t at_a = m.name.rfind("@a");
      if (m.name.rfind("bench.fleet.", 0) == 0 && at_a != std::string::npos) {
        const std::string stem = m.name.substr(0, at_a + 2);
        bool other_agent_count = false;
        for (const TrajectoryEntry& e : trajectory)
          for (const Measurement& b : e.benchmarks)
            other_agent_count = other_agent_count ||
                                (b.name.rfind(stem, 0) == 0 && b.name != m.name);
        if (other_agent_count) {
          log << "  " << m.name
              << ": baseline exists only at a different agent count "
                 "(fleet comparison skipped)\n";
          ++result.skipped;
          continue;
        }
      }
      log << "  " << m.name << ": no baseline (skipped)\n";
      continue;
    }
    if (m.name.find("@t") != std::string::npos && entry_single_core(*entry)) {
      log << "  " << m.name << ": baseline \"" << entry->label
          << "\" was recorded single-core (scaling comparison skipped)\n";
      ++result.skipped;
      continue;
    }
    const auto ref =
        std::find_if(entry->benchmarks.begin(), entry->benchmarks.end(),
                     [&m](const Measurement& b) { return b.name == m.name; });
    const bool gate_throughput = m.events_per_s > 0.0 && ref->events_per_s > 0.0;
    if (gate_throughput &&
        entry_single_core(*entry) != this_machine_single_core) {
      log << "  " << m.name << ": baseline \"" << entry->label
          << "\" core count differs from this machine (throughput comparison "
             "skipped)\n";
      ++result.skipped;
      continue;
    }
    ++result.compared;
    bool regressed = false;
    if (gate_throughput) {
      regressed = m.events_per_s < ref->events_per_s / factor;
      log << "  " << m.name << ": " << util::fmt_fixed(m.events_per_s, 0)
          << " ev/s vs baseline \"" << entry->label << "\" "
          << util::fmt_fixed(ref->events_per_s, 0) << " ev/s"
          << (regressed ? "  REGRESSION" : "") << "\n";
    } else {
      regressed = m.wall_s > ref->wall_s * factor;
      log << "  " << m.name << ": " << util::fmt_fixed(m.wall_s, 2)
          << " s vs baseline \"" << entry->label << "\" "
          << util::fmt_fixed(ref->wall_s, 2) << " s"
          << (regressed ? "  REGRESSION" : "") << "\n";
    }
    result.ok = result.ok && !regressed;
  }
  return result;
}

}  // namespace minim::bench
