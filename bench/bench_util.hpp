#pragma once

// Shared plumbing for the figure harnesses: render a sweep as the paper's
// table (x column + one column per strategy, mean over runs with the 95% CI
// half-width), and optionally dump raw CSV for offline plotting.
//
// Every harness honours:
//   --runs=N       Monte-Carlo runs per point (default 100, as in the paper)
//   --seed=S       master seed (default 2001)
//   --threads=T    worker threads (default: hardware)
//   --csv-dir=DIR  write <name>.csv series files into DIR
//   --fast         shorthand for --runs=10 (CI smoke)

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "sim/sweeps.hpp"
#include "util/csv.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace minim::bench {

// --------------------------------------------------------- memory profiling

/// Peak resident set size of this process in bytes (Linux VmHWM); 0 when the
/// platform does not expose it.  Monotone over the process lifetime, so
/// harnesses that scale a size axis should run it ascending and snapshot
/// after each stage.
inline std::size_t peak_rss_bytes() {
#if defined(__linux__)
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0;
  char line[256];
  std::size_t kib = 0;
  while (std::fgets(line, sizeof(line), status) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kib = static_cast<std::size_t>(std::strtoull(line + 6, nullptr, 10));
      break;
    }
  }
  std::fclose(status);
  return kib * 1024;
#else
  return 0;
#endif
}

/// Engine-footprint report for the large-N benches: heap bytes reachable
/// from the network's hot structures, normalized per live node.
struct MemoryProfile {
  std::size_t engine_bytes = 0;
  std::size_t nodes = 0;
  double bytes_per_node = 0.0;
};

inline MemoryProfile memory_profile(const net::AdhocNetwork& network) {
  MemoryProfile profile;
  profile.engine_bytes = network.memory_bytes();
  profile.nodes = network.node_count();
  if (profile.nodes > 0)
    profile.bytes_per_node = static_cast<double>(profile.engine_bytes) /
                             static_cast<double>(profile.nodes);
  return profile;
}

/// Splits a comma-separated value on commas, dropping empty fields.
inline std::vector<std::string> split_list(const std::string& raw) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (start <= raw.size()) {
    const std::size_t pos = raw.find(',', start);
    const std::string field =
        raw.substr(start, pos == std::string::npos ? pos : pos - start);
    if (!field.empty()) fields.push_back(field);
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return fields;
}

/// Parses a comma-separated string list option ("--strategies=minim,cp");
/// returns `fallback` when the option is absent.
inline std::vector<std::string> string_list_from(const util::Options& options,
                                                 const std::string& key,
                                                 std::vector<std::string> fallback) {
  const std::string raw = options.get(key, "");
  return raw.empty() ? fallback : split_list(raw);
}

/// Parses a comma-separated list option ("--ns=40,60,80") into doubles.
inline std::vector<double> double_list_from(const util::Options& options,
                                            const std::string& key,
                                            std::vector<double> fallback) {
  const std::string raw = options.get(key, "");
  if (raw.empty()) return fallback;
  std::vector<double> values;
  for (const std::string& field : split_list(raw)) values.push_back(std::stod(field));
  return values;
}

inline sim::SweepOptions sweep_options_from(const util::Options& options,
                                            std::vector<std::string> strategies) {
  sim::SweepOptions sweep;
  sweep.strategies = std::move(strategies);
  sweep.runs = static_cast<std::size_t>(options.get_int("runs", 100));
  if (options.get_bool("fast", false)) sweep.runs = 10;
  sweep.seed = static_cast<std::uint64_t>(options.get_int("seed", 2001));
  sweep.threads = static_cast<std::size_t>(options.get_int("threads", 0));
  return sweep;
}

/// Which of the two metrics a sub-figure plots.
enum class Metric { kColor, kRecodings };

/// The sub-series of `points` whose strategy is in `keep` (original order).
/// Strategy lanes of a sweep are independent, so the distributed-only
/// sub-figures (Fig 10c/f, 11c) are exact subsets of the all-strategies
/// sweep — filtering replaces what used to be a second full sweep over the
/// identical workloads, at byte-identical CSV output.
inline std::vector<sim::SweepPoint> filter_strategies(
    const std::vector<sim::SweepPoint>& points,
    const std::vector<std::string>& keep) {
  std::vector<sim::SweepPoint> subset;
  for (const auto& point : points)
    if (std::find(keep.begin(), keep.end(), point.strategy) != keep.end())
      subset.push_back(point);
  return subset;
}

/// Prints one sub-figure as a table: rows = x values, columns = strategies,
/// cells = "mean +- ci95".
inline void print_series(const std::string& title, const std::string& x_name,
                         const std::vector<sim::SweepPoint>& points, Metric metric,
                         const util::Options& options, const std::string& csv_name) {
  // Collect strategy order as first encountered.
  std::vector<std::string> strategies;
  for (const auto& point : points)
    if (std::find(strategies.begin(), strategies.end(), point.strategy) ==
        strategies.end())
      strategies.push_back(point.strategy);

  util::TextTable table(title);
  std::vector<std::string> header{x_name};
  for (const auto& s : strategies) header.push_back(s);
  table.set_header(header);

  std::vector<double> xs;
  for (const auto& point : points)
    if (xs.empty() || xs.back() != point.x) xs.push_back(point.x);

  auto stat_of = [&](const sim::SweepPoint& p) {
    return metric == Metric::kColor ? p.color_metric : p.recoding_metric;
  };

  for (double x : xs) {
    std::vector<std::string> row{util::fmt_fixed(x, 1)};
    for (const auto& s : strategies) {
      for (const auto& point : points)
        if (point.x == x && point.strategy == s) {
          const auto& stat = stat_of(point);
          row.push_back(util::fmt_fixed(stat.mean(), 2) + " +- " +
                        util::fmt_fixed(stat.ci95_halfwidth(), 2));
          break;
        }
    }
    table.add_row(std::move(row));
  }
  std::cout << table.render() << "\n";

  const std::string csv_dir = options.get("csv-dir", "");
  if (!csv_dir.empty()) {
    auto stream = util::open_csv(csv_dir + "/" + csv_name + ".csv");
    util::CsvWriter csv(stream);
    csv.header({x_name, "strategy", "mean", "ci95", "stddev", "min", "max", "runs"});
    for (const auto& point : points) {
      const auto& stat = stat_of(point);
      csv.row({util::fmt_fixed(point.x, 3), point.strategy,
               util::fmt_fixed(stat.mean(), 6), util::fmt_fixed(stat.ci95_halfwidth(), 6),
               util::fmt_fixed(stat.stddev(), 6), util::fmt_fixed(stat.min(), 3),
               util::fmt_fixed(stat.max(), 3), std::to_string(stat.count())});
    }
    std::cout << "[csv] wrote " << csv_dir << "/" << csv_name << ".csv\n\n";
  }
}

}  // namespace minim::bench
