#pragma once

// Shared plumbing for the figure harnesses: render a sweep as the paper's
// table (x column + one column per strategy, mean over runs with the 95% CI
// half-width), and optionally dump raw CSV for offline plotting.
//
// Every harness honours:
//   --runs=N       Monte-Carlo runs per point (default 100, as in the paper)
//   --seed=S       master seed (default 2001)
//   --threads=T    worker threads (default: hardware)
//   --csv-dir=DIR  write <name>.csv series files into DIR
//   --fast         shorthand for --runs=10 (CI smoke)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/network.hpp"
#include "sim/experiment_io.hpp"
#include "sim/orchestrator.hpp"
#include "sim/sweeps.hpp"
#include "util/csv.hpp"
#include "util/options.hpp"
#include "util/remote_pool.hpp"
#include "util/rpc.hpp"
#include "util/subprocess.hpp"
#include "util/table.hpp"

namespace minim::bench {

// --------------------------------------------------------- memory profiling

/// Peak resident set size of this process in bytes (Linux VmHWM); 0 when the
/// platform does not expose it.  Monotone over the process lifetime, so
/// harnesses that scale a size axis should run it ascending and snapshot
/// after each stage.
inline std::size_t peak_rss_bytes() {
#if defined(__linux__)
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0;
  char line[256];
  std::size_t kib = 0;
  while (std::fgets(line, sizeof(line), status) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kib = static_cast<std::size_t>(std::strtoull(line + 6, nullptr, 10));
      break;
    }
  }
  std::fclose(status);
  return kib * 1024;
#else
  return 0;
#endif
}

/// Engine-footprint report for the large-N benches: heap bytes reachable
/// from the network's hot structures, normalized per live node.
struct MemoryProfile {
  std::size_t engine_bytes = 0;
  std::size_t nodes = 0;
  double bytes_per_node = 0.0;
};

inline MemoryProfile memory_profile(const net::AdhocNetwork& network) {
  MemoryProfile profile;
  profile.engine_bytes = network.memory_bytes();
  profile.nodes = network.node_count();
  if (profile.nodes > 0)
    profile.bytes_per_node = static_cast<double>(profile.engine_bytes) /
                             static_cast<double>(profile.nodes);
  return profile;
}

/// Splits a comma-separated value on commas, dropping empty fields.
inline std::vector<std::string> split_list(const std::string& raw) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (start <= raw.size()) {
    const std::size_t pos = raw.find(',', start);
    const std::string field =
        raw.substr(start, pos == std::string::npos ? pos : pos - start);
    if (!field.empty()) fields.push_back(field);
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return fields;
}

/// Parses a comma-separated string list option ("--strategies=minim,cp");
/// returns `fallback` when the option is absent.
inline std::vector<std::string> string_list_from(const util::Options& options,
                                                 const std::string& key,
                                                 std::vector<std::string> fallback) {
  const std::string raw = options.get(key, "");
  return raw.empty() ? fallback : split_list(raw);
}

/// Parses a comma-separated list option ("--ns=40,60,80") into doubles.
inline std::vector<double> double_list_from(const util::Options& options,
                                            const std::string& key,
                                            std::vector<double> fallback) {
  const std::string raw = options.get(key, "");
  if (raw.empty()) return fallback;
  std::vector<double> values;
  for (const std::string& field : split_list(raw)) values.push_back(std::stod(field));
  return values;
}

inline sim::SweepOptions sweep_options_from(const util::Options& options,
                                            std::vector<std::string> strategies) {
  sim::SweepOptions sweep;
  sweep.strategies = std::move(strategies);
  sweep.runs = static_cast<std::size_t>(options.get_int("runs", 100));
  if (options.get_bool("fast", false)) sweep.runs = 10;
  sweep.seed = static_cast<std::uint64_t>(options.get_int("seed", 2001));
  sweep.threads = static_cast<std::size_t>(options.get_int("threads", 0));
  return sweep;
}

// ------------------------------------------------- orchestrated experiments
//
// Driver-aware CLI runner: a harness that routes its experiments through
// `run_experiment_cli` (and dispatches workers via `is_worker` +
// `run_worker_unit`) gains multi-process orchestration for free:
//
//   --orchestrate=K      drive K self-spawned worker processes
//   --units=M            work units to plan (default K)
//   --split=MODE         trials | points | auto (default auto)
//   --max-attempts=A     per-unit attempts, bounded retry (default 3)
//   --worker-timeout=S   per-attempt kill deadline in seconds (default none)
//   --shard-dir=DIR      scratch for shard CSVs/logs/manifest
//                        (default <tag>-orchestrate)
//   --resume             reuse done units from a prior manifest
//   --keep-shards        keep per-unit CSVs/logs after the merge
//   --crash-unit=I       failure injection (tests/CI): the worker for unit I
//                        exits 1 on its first attempt; a marker file next to
//                        the unit CSV makes the retried attempt succeed
//
// Fleet orchestration (TCP worker agents instead of local processes):
//   --fleet[=PORT]       listen for worker agents (0/absent value = an
//                        ephemeral port, printed at startup) and run the
//                        units over whoever connects
//   --fleet-agents=N     additionally self-spawn N loopback agents — the
//                        one-machine / CI form; implies --fleet
//   --fleet-capacity=C   advertised capacity of self-spawned agents (def. 1)
//   --straggler-factor=F speculative re-dispatch at F x median unit time
//   --fleet-die-after=K  failure injection: the first self-spawned agent
//                        drops its connection after K results
//   --fleet-delay-ms=X   straggler injection: the first self-spawned agent
//                        sleeps X ms before each unit
//
// Agent side (any fleet-aware harness binary doubles as the agent):
//   --worker-agent=HOST:PORT   connect to a fleet driver and serve units
//   --capacity=N               advertised concurrent units (def. cores)
//   --agent-scratch=DIR        agent-local scratch for unit CSVs/logs
//   --agent-die-after=K / --agent-delay-ms=X   injections (set by the
//                              driver's --fleet-die-after/--fleet-delay-ms)
//
// Worker-side internal flags (set by the driver, never by hand):
//   --run-unit=pb/pc/tb/tc --unit-out=F --unit-id=I --unit-tag=T

/// Option keys owned by the orchestration layer; never forwarded to workers.
inline const std::vector<std::string>& orchestrate_keys() {
  static const std::vector<std::string> keys{
      "orchestrate", "units",    "split",    "max-attempts",
      "worker-timeout", "shard-dir", "resume", "keep-shards",
      "run-unit",    "unit-out", "unit-id",  "unit-tag",
      "fleet",       "fleet-agents", "fleet-capacity", "straggler-factor",
      "fleet-die-after", "fleet-delay-ms",
      "worker-agent", "capacity", "agent-scratch", "agent-die-after",
      "agent-delay-ms"};
  return keys;
}

/// Keys that describe driver-side output, not the experiment; a worker fed
/// one of these would fight the driver over files/stdout.
inline const std::vector<std::string>& driver_output_keys() {
  static const std::vector<std::string> keys{
      "csv-dir", "save-experiment", "serial-check", "selfcheck",
      "shard",   "merge",           "out",          "threads"};
  return keys;
}

/// True when this invocation is an orchestration worker.
inline bool is_worker(const util::Options& options) {
  return options.has("run-unit");
}

/// True when this invocation is a fleet worker agent (`--worker-agent=…`).
/// Check this before `is_worker`: the agent loop re-invokes this binary
/// with `--run-unit` for each job it serves.
inline bool is_fleet_agent(const util::Options& options) {
  return options.has("worker-agent");
}

/// Agent main: connect to the fleet driver named by `--worker-agent` and
/// serve units until SHUTDOWN.  Returns the process exit code.
inline int run_fleet_agent(const util::Options& options) {
  const std::string target = options.get("worker-agent", "");
  const std::size_t colon = target.rfind(':');
  if (colon == std::string::npos || colon + 1 >= target.size()) {
    std::cerr << "--worker-agent wants HOST:PORT, got '" << target << "'\n";
    return 2;
  }
  util::AgentOptions agent;
  agent.host = target.substr(0, colon);
  agent.port = static_cast<std::uint16_t>(
      std::strtoul(target.c_str() + colon + 1, nullptr, 10));
  agent.capacity = static_cast<std::uint32_t>(options.get_int("capacity", 0));
  agent.die_after =
      static_cast<std::size_t>(options.get_int("agent-die-after", 0));
  agent.delay_s = options.get_double("agent-delay-ms", 0.0) / 1000.0;
  agent.log = [](const std::string& line) {
    std::cout << line << "\n" << std::flush;
  };
  const std::string scratch =
      options.get("agent-scratch", "fleet-agent-scratch");
  return util::run_worker_agent(agent, util::subprocess_job_runner(scratch));
}

/// Parses the worker rectangle "pb/pc/tb/tc" into `run`; exits 2 on a
/// malformed value (driver bug, not user input).
inline void apply_worker_rectangle(const util::Options& options,
                                   sim::ExperimentOptions& run) {
  const std::string raw = options.get("run-unit", "");
  std::size_t fields[4] = {0, 0, 0, 0};
  std::size_t start = 0;
  for (std::size_t f = 0; f < 4; ++f) {
    const std::size_t slash = raw.find('/', start);
    const std::string part =
        raw.substr(start, slash == std::string::npos ? slash : slash - start);
    char* end = nullptr;
    fields[f] = static_cast<std::size_t>(
        std::strtoull(part.c_str(), &end, 10));
    if (part.empty() || end != part.c_str() + part.size() ||
        (f < 3 && slash == std::string::npos)) {
      std::cerr << "--run-unit wants pb/pc/tb/tc, got '" << raw << "'\n";
      std::exit(2);
    }
    start = slash + 1;
  }
  run.point_begin = fields[0];
  run.point_count = fields[1];
  run.trial_begin = fields[2];
  run.trial_count = fields[3];
}

/// Worker side: when `tag` matches this worker's `--unit-tag`, runs the
/// unit's rectangle of `experiment` and writes the shard CSV to
/// `--unit-out`; returns true (the caller returns 0 from main).  Returns
/// false when the tag names one of the harness's other experiments.
///
/// Failure injection: with `--crash-unit` equal to this unit's id, the first
/// attempt writes a marker file and exits 1 before running anything — the
/// driver's bounded retry then runs the unit for real.
inline bool run_worker_unit(const util::Options& options,
                            const sim::Experiment& experiment,
                            sim::ExperimentOptions run, const std::string& tag) {
  if (!is_worker(options)) return false;
  if (options.get("unit-tag", "") != tag) return false;

  const std::string out_path = options.get("unit-out", "");
  if (out_path.empty()) {
    std::cerr << "worker invoked without --unit-out\n";
    std::exit(2);
  }
  if (options.has("crash-unit") &&
      options.get("crash-unit", "") == options.get("unit-id", "?")) {
    const std::string marker = out_path + ".crashed";
    if (!std::ifstream(marker).good()) {
      std::ofstream(marker) << "injected crash\n";
      std::cerr << "[worker] injected crash for unit "
                << options.get("unit-id", "?") << "\n";
      std::exit(1);
    }
  }
  apply_worker_rectangle(options, run);
  sim::write_experiment_csv_file(experiment.run(run), out_path);
  return true;
}

/// Cheap config fingerprint (FNV-1a) over everything that makes two
/// same-shaped studies different: scenario kind and spec knobs, axis names
/// and point coordinates, strategy names, trials, seed.  Recorded in the
/// shard manifest so `--resume` can refuse another study's leftovers.
inline std::string experiment_fingerprint(const sim::Experiment& experiment,
                                          const sim::ExperimentOptions& run) {
  std::uint64_t hash = 1469598103934665603ull;
  const auto mix_bytes = [&hash](const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash ^= bytes[i];
      hash *= 1099511628211ull;
    }
  };
  const auto mix = [&mix_bytes](const auto& value) {
    mix_bytes(&value, sizeof value);
  };
  const auto mix_string = [&mix_bytes](const std::string& s) {
    mix_bytes(s.data(), s.size());
    const char end = '\0';
    mix_bytes(&end, 1);
  };

  const sim::ScenarioSpec& base = experiment.grid().base;
  mix(base.kind);
  mix(base.raise_factor);
  mix(base.max_displacement);
  mix(base.move_rounds);
  mix(base.validate);
  mix(base.workload.n);
  mix(base.workload.min_range);
  mix(base.workload.max_range);
  mix(base.workload.width);
  mix(base.workload.height);
  mix(base.workload.placement);
  mix(base.workload.cluster_count);
  mix(base.workload.cluster_sigma);
  mix(base.workload.min_separation);
  mix(base.churn.duration);
  mix(base.churn.arrival_rate);
  mix(base.churn.mean_lifetime);
  mix(base.churn.move_rate);
  mix(base.churn.power_rate);
  for (const sim::GridAxis& axis : experiment.grid().axes) mix_string(axis.name);
  for (const std::vector<double>& point : experiment.points())
    for (double coordinate : point) mix(coordinate);
  for (const std::string& name : experiment.grid().strategies) mix_string(name);
  mix(run.trials);
  mix(run.seed);

  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

/// Driver side: runs `experiment` — orchestrated over self-spawned worker
/// processes when `--orchestrate=K` is present, in-process otherwise.  The
/// merged result is bit-identical either way.  `tag` names this experiment
/// among the harness's experiments (worker dispatch + default scratch dir).
inline sim::ExperimentResult run_experiment_cli(
    const util::Options& options, const sim::Experiment& experiment,
    const sim::ExperimentOptions& run, const std::string& tag) {
  const auto workers =
      static_cast<std::size_t>(options.get_int("orchestrate", 0));
  const bool fleet = options.has("fleet") || options.has("fleet-agents");
  if (workers == 0 && !fleet) return experiment.run(run);

  const auto fleet_agents =
      static_cast<std::size_t>(options.get_int("fleet-agents", 0));
  const auto fleet_capacity = static_cast<std::uint32_t>(
      std::max<long long>(1, options.get_int("fleet-capacity", 1)));

  sim::OrchestratorOptions orchestration;
  orchestration.experiment = tag + "#" + experiment_fingerprint(experiment, run);
  // For a fleet, `workers` sizes the default unit plan: one unit per
  // advertised slot of the self-spawned agents (external fleets should
  // pass --units explicitly).
  orchestration.workers =
      fleet ? std::max<std::size_t>(1, fleet_agents * fleet_capacity)
            : workers;
  orchestration.units = static_cast<std::size_t>(options.get_int("units", 0));
  orchestration.split = sim::work_split_from(options.get("split", "auto"));
  orchestration.max_attempts =
      static_cast<std::size_t>(options.get_int("max-attempts", 3));
  orchestration.worker_timeout_s = options.get_double("worker-timeout", 0.0);
  orchestration.scratch_dir = options.get("shard-dir", tag + "-orchestrate");
  orchestration.resume = options.get_bool("resume", false);
  orchestration.keep_scratch = options.get_bool("keep-shards", false);
  orchestration.progress = [](const std::string& line) {
    std::cout << line << "\n" << std::flush;
  };

  std::unique_ptr<util::RemotePool> fleet_pool;
  if (fleet) {
    util::RemotePoolOptions pool_options;
    pool_options.port =
        static_cast<std::uint16_t>(options.get_int("fleet", 0));
    pool_options.self_spawn = fleet_agents;
    pool_options.agent_capacity = fleet_capacity;
    pool_options.scratch_dir = orchestration.scratch_dir + "/agents";
    pool_options.straggler_factor =
        options.get_double("straggler-factor", 3.0);
    if (options.has("fleet-die-after"))
      pool_options.first_agent_extra_args.push_back(
          "--agent-die-after=" + options.get("fleet-die-after", "1"));
    if (options.has("fleet-delay-ms"))
      pool_options.first_agent_extra_args.push_back(
          "--agent-delay-ms=" + options.get("fleet-delay-ms", "0"));
    pool_options.log = [](const std::string& line) {
      std::cout << line << "\n" << std::flush;
    };
    fleet_pool = std::make_unique<util::RemotePool>(pool_options);
    orchestration.pool = fleet_pool.get();
    std::cout << "[fleet] driver listening on port " << fleet_pool->port()
              << " (" << fleet_agents << " self-spawned agent(s))\n"
              << std::flush;
  }

  const std::string self = util::self_exe_path();
  if (self.empty()) {
    std::cerr << "--orchestrate: cannot locate this executable to self-spawn\n";
    std::exit(2);
  }

  // Workers re-parse this harness's own flags, minus the orchestration and
  // driver-output keys, plus their unit rectangle.  Worker threads default
  // to an even share of the machine so K workers do not oversubscribe it.
  std::vector<std::string> base_args{self};
  for (const auto& [key, value] : options.values()) {
    const auto excluded = [&key](const std::vector<std::string>& keys) {
      return std::find(keys.begin(), keys.end(), key) != keys.end();
    };
    if (excluded(orchestrate_keys()) || excluded(driver_output_keys())) continue;
    base_args.push_back(value.empty() ? "--" + key : "--" + key + "=" + value);
  }
  std::size_t worker_threads =
      static_cast<std::size_t>(options.get_int("threads", 0));
  if (worker_threads == 0) {
    const std::size_t hardware =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    worker_threads =
        std::max<std::size_t>(1, hardware / orchestration.workers);
  }
  base_args.push_back("--threads=" + std::to_string(worker_threads));

  sim::Orchestrator orchestrator(experiment.points().size(), run.trials,
                                 run.seed, orchestration);
  std::vector<std::string> unit_outputs;
  sim::ExperimentResult merged =
      orchestrator.run([&](const sim::WorkUnit& unit,
                           const std::string& out_path) {
        unit_outputs.push_back(out_path);
        std::vector<std::string> args = base_args;
        args.push_back("--run-unit=" + std::to_string(unit.point_begin) + "/" +
                       std::to_string(unit.point_count) + "/" +
                       std::to_string(unit.trial_begin) + "/" +
                       std::to_string(unit.trial_count));
        args.push_back("--unit-out=" + out_path);
        args.push_back("--unit-id=" + std::to_string(unit.id));
        args.push_back("--unit-tag=" + tag);
        return args;
      });
  if (options.has("crash-unit")) {
    // Drop the injected-crash markers so the scratch dir can empty out.
    std::error_code ignored;
    for (const std::string& out : unit_outputs)
      std::filesystem::remove(out + ".crashed", ignored);
    std::filesystem::remove(orchestration.scratch_dir, ignored);
  }
  if (fleet_pool != nullptr) {
    const util::RemotePool::Stats& stats = fleet_pool->stats();
    std::cout << "[fleet] " << stats.agents_seen << " agent(s) served the run"
              << " (" << stats.agents_lost << " lost, "
              << stats.redispatched << " speculative re-dispatch(es), "
              << stats.results_ignored << " duplicate result(s) ignored)\n";
    for (std::size_t i = 0; i < stats.agent_names.size(); ++i)
      std::cout << "[fleet]   " << stats.agent_names[i] << ": "
                << stats.agent_completed[i] << " unit(s), busy "
                << util::fmt_fixed(stats.agent_busy_s[i], 2) << "s\n";
    std::cout << std::flush;
    if (!orchestration.keep_scratch) {
      // The agents' scratch subdirectory (logs) mirrors the orchestrator's
      // own cleanup policy.
      std::error_code ignored;
      std::filesystem::remove_all(orchestration.scratch_dir + "/agents",
                                  ignored);
      std::filesystem::remove(orchestration.scratch_dir, ignored);
    }
  }
  return merged;
}

/// Which of the two metrics a sub-figure plots.
enum class Metric { kColor, kRecodings };

/// The sub-series of `points` whose strategy is in `keep` (original order).
/// Strategy lanes of a sweep are independent, so the distributed-only
/// sub-figures (Fig 10c/f, 11c) are exact subsets of the all-strategies
/// sweep — filtering replaces what used to be a second full sweep over the
/// identical workloads, at byte-identical CSV output.
inline std::vector<sim::SweepPoint> filter_strategies(
    const std::vector<sim::SweepPoint>& points,
    const std::vector<std::string>& keep) {
  std::vector<sim::SweepPoint> subset;
  for (const auto& point : points)
    if (std::find(keep.begin(), keep.end(), point.strategy) != keep.end())
      subset.push_back(point);
  return subset;
}

/// Prints one sub-figure as a table: rows = x values, columns = strategies,
/// cells = "mean +- ci95".
inline void print_series(const std::string& title, const std::string& x_name,
                         const std::vector<sim::SweepPoint>& points, Metric metric,
                         const util::Options& options, const std::string& csv_name) {
  // Collect strategy order as first encountered.
  std::vector<std::string> strategies;
  for (const auto& point : points)
    if (std::find(strategies.begin(), strategies.end(), point.strategy) ==
        strategies.end())
      strategies.push_back(point.strategy);

  util::TextTable table(title);
  std::vector<std::string> header{x_name};
  for (const auto& s : strategies) header.push_back(s);
  table.set_header(header);

  std::vector<double> xs;
  for (const auto& point : points)
    if (xs.empty() || xs.back() != point.x) xs.push_back(point.x);

  auto stat_of = [&](const sim::SweepPoint& p) {
    return metric == Metric::kColor ? p.color_metric : p.recoding_metric;
  };

  for (double x : xs) {
    std::vector<std::string> row{util::fmt_fixed(x, 1)};
    for (const auto& s : strategies) {
      for (const auto& point : points)
        if (point.x == x && point.strategy == s) {
          const auto& stat = stat_of(point);
          row.push_back(util::fmt_fixed(stat.mean(), 2) + " +- " +
                        util::fmt_fixed(stat.ci95_halfwidth(), 2));
          break;
        }
    }
    table.add_row(std::move(row));
  }
  std::cout << table.render() << "\n";

  const std::string csv_dir = options.get("csv-dir", "");
  if (!csv_dir.empty()) {
    auto stream = util::open_csv(csv_dir + "/" + csv_name + ".csv");
    util::CsvWriter csv(stream);
    csv.header({x_name, "strategy", "mean", "ci95", "stddev", "min", "max", "runs"});
    for (const auto& point : points) {
      const auto& stat = stat_of(point);
      csv.row({util::fmt_fixed(point.x, 3), point.strategy,
               util::fmt_fixed(stat.mean(), 6), util::fmt_fixed(stat.ci95_halfwidth(), 6),
               util::fmt_fixed(stat.stddev(), 6), util::fmt_fixed(stat.min(), 3),
               util::fmt_fixed(stat.max(), 3), std::to_string(stat.count())});
    }
    std::cout << "[csv] wrote " << csv_dir << "/" << csv_name << ".csv\n\n";
  }
}

}  // namespace minim::bench
