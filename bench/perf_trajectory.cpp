// Perf-trajectory harness: times the repo's slowest bench workloads — the
// paper-size x-grids behind the fig10_join / fig11_power_increase smokes,
// plus the new grid-study engine — and writes the wall clocks as JSON
// (default BENCH_sweep.json).  The committed BENCH_sweep.json at the repo
// root is the first recorded baseline; future optimization work (BBB
// incremental conflict graphs, memoized coloring) re-runs this harness and
// diffs against it.
//
// Options:
//   --runs=N      Monte-Carlo runs per figure point (default 2, = CI smoke)
//   --trials=N    trials per grid-study point (default 2)
//   --threads=T   pool size (default 0 = hardware concurrency)
//   --seed=S      master seed (default 2001)
//   --out=FILE    output path (default BENCH_sweep.json)

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "../bench/bench_util.hpp"
#include "sim/experiment.hpp"
#include "sim/sweeps.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace {

using namespace minim;

struct Entry {
  std::string name;
  double wall_s = 0.0;
};

template <typename Fn>
Entry timed(const std::string& name, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::cout << "  " << name << ": " << util::fmt_fixed(elapsed, 2) << " s\n";
  return Entry{name, elapsed};
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options options(argc, argv);
  sim::SweepOptions sweep;
  sweep.runs = static_cast<std::size_t>(options.get_int("runs", 2));
  sweep.seed = static_cast<std::uint64_t>(options.get_int("seed", 2001));
  sweep.threads = static_cast<std::size_t>(options.get_int("threads", 0));
  const auto trials = static_cast<std::size_t>(options.get_int("trials", 2));
  const std::string out_path = options.get("out", "BENCH_sweep.json");

  std::cout << "=== Perf trajectory (runs=" << sweep.runs
            << ", trials=" << trials << ") ===\n";

  std::vector<Entry> entries;

  // The exact sweeps bench_fig10_join runs (paper-size x-grids).
  entries.push_back(timed("bench.fig10_join", [&] {
    const std::vector<double> ns{40, 50, 60, 70, 80, 90, 100, 110, 120};
    const std::vector<double> avg_ranges{7.5, 17.5, 27.5, 37.5, 47.5, 57.5, 67.5};
    sim::SweepOptions all = sweep;
    all.strategies = {"minim", "cp", "bbb"};
    sim::SweepOptions distributed = sweep;
    distributed.strategies = {"minim", "cp"};
    sim::sweep_join_vs_n(ns, all);
    sim::sweep_join_vs_n(ns, distributed);
    sim::sweep_join_vs_avg_range(avg_ranges, all);
    sim::sweep_join_vs_avg_range(avg_ranges, distributed);
  }));

  // The exact sweeps bench_fig11_power_increase runs.
  entries.push_back(timed("bench.fig11_power_increase", [&] {
    const std::vector<double> factors{1.0, 1.5, 2.0, 2.5, 3.0,  3.5,
                                      4.0, 4.5, 5.0, 5.5, 6.0};
    sim::SweepOptions all = sweep;
    all.strategies = {"minim", "cp", "cp-exact", "bbb"};
    sim::SweepOptions distributed = sweep;
    distributed.strategies = {"minim", "cp"};
    sim::sweep_power_vs_raise_factor(factors, all);
    sim::sweep_power_vs_raise_factor(factors, distributed);
  }));

  // The grid-study default grid (bench/grid_study.cpp).
  entries.push_back(timed("bench.grid_study", [&] {
    sim::ExperimentGrid grid;
    grid.base.kind = sim::ScenarioKind::kPower;
    grid.axes.push_back(sim::GridAxis{
        "n", {40, 60, 80, 100}, [](sim::ScenarioSpec& spec, double x) {
          spec.workload.n = static_cast<std::size_t>(x);
        }});
    grid.axes.push_back(sim::GridAxis{
        "raise_factor", {1.5, 2.5, 3.5, 4.5, 5.5},
        [](sim::ScenarioSpec& spec, double x) { spec.raise_factor = x; }});
    sim::ExperimentOptions run;
    run.trials = trials;
    run.seed = sweep.seed;
    run.threads = sweep.threads;
    sim::Experiment(std::move(grid)).run(run);
  }));

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 1;
  }
  out << "{\n"
      << "  \"schema\": \"minim-bench-trajectory-v1\",\n"
      << "  \"config\": {\n"
      << "    \"runs\": " << sweep.runs << ",\n"
      << "    \"trials\": " << trials << ",\n"
      << "    \"threads\": "
      << (sweep.threads ? sweep.threads : std::thread::hardware_concurrency())
      << ",\n"
      << "    \"seed\": " << sweep.seed << "\n"
      << "  },\n"
      << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out << "    {\"name\": \"" << entries[i].name << "\", \"wall_s\": "
        << util::fmt_fixed(entries[i].wall_s, 3) << "}"
        << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "[json] wrote " << out_path << "\n";
  return 0;
}
