// Perf-trajectory harness: times the repo's slowest bench workloads — the
// paper-size x-grids behind the fig10_join / fig11_power_increase smokes,
// plus the grid-study engine — and records the wall clocks in
// BENCH_sweep.json (schema v2: an append-only *trajectory* of labeled
// entries, so the committed file shows each optimization's before/after).
//
// Modes:
//   default       run the benches and append a labeled entry to --out
//                 (a v1 file is upgraded in place, its measurement kept as
//                 the "baseline" entry)
//   --check[=F]   run the benches and compare against the LAST entry of F
//                 (default: the --out file); exit 1 when any benchmark's
//                 wall clock exceeds baseline * --check-factor.  Nothing is
//                 written.  This is the CI regression gate.
//
// Options:
//   --runs=N          Monte-Carlo runs per figure point (default 2, = CI smoke)
//   --trials=N        trials per grid-study point (default 2)
//   --threads=T       pool size (default 0 = hardware concurrency)
//   --seed=S          master seed (default 2001)
//   --label=NAME      entry label (default "run")
//   --out=FILE        trajectory path (default BENCH_sweep.json)
//   --check[=FILE]    compare mode (see above)
//   --check-factor=X  allowed slowdown factor (default 1.5 — generous,
//                     CI machines are noisy)

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "../bench/bench_util.hpp"
#include "sim/experiment.hpp"
#include "sim/sweeps.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace {

using namespace minim;

struct Measurement {
  std::string name;
  double wall_s = 0.0;
};

struct TrajectoryEntry {
  std::string label;
  std::string config_json;  ///< the entry's "config" object, verbatim
  std::vector<Measurement> benchmarks;
};

template <typename Fn>
Measurement timed(const std::string& name, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::cout << "  " << name << ": " << util::fmt_fixed(elapsed, 2) << " s\n";
  return Measurement{name, elapsed};
}

// ------------------------------------------------------------ JSON-ish I/O
//
// The file is machine-written by this harness only, so a tolerant scan for
// the keys we emit is enough — no JSON library in the tree.

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Value of `"key": "..."` at/after `from`; empty when absent.
std::string scan_string(const std::string& text, const std::string& key,
                        std::size_t from, std::size_t until) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle, from);
  if (at == std::string::npos || at >= until) return "";
  const std::size_t open = text.find('"', at + needle.size());
  if (open == std::string::npos) return "";
  const std::size_t close = text.find('"', open + 1);
  if (close == std::string::npos) return "";
  return text.substr(open + 1, close - open - 1);
}

/// The balanced `{...}` of `"key": {` at/after `from`; empty when absent.
std::string scan_object(const std::string& text, const std::string& key,
                        std::size_t from, std::size_t until) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle, from);
  if (at == std::string::npos || at >= until) return "";
  const std::size_t open = text.find('{', at + needle.size());
  if (open == std::string::npos) return "";
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '{') ++depth;
    if (text[i] == '}' && --depth == 0) return text.substr(open, i - open + 1);
  }
  return "";
}

/// Every {"name": ..., "wall_s": ...} pair in [from, until).
std::vector<Measurement> scan_benchmarks(const std::string& text, std::size_t from,
                                         std::size_t until) {
  std::vector<Measurement> out;
  std::size_t cursor = from;
  while (true) {
    const std::size_t at = text.find("\"name\":", cursor);
    if (at == std::string::npos || at >= until) break;
    Measurement m;
    m.name = scan_string(text, "name", at, until);
    const std::size_t wall = text.find("\"wall_s\":", at);
    if (wall == std::string::npos || wall >= until) break;
    m.wall_s = std::strtod(text.c_str() + wall + 9, nullptr);
    out.push_back(std::move(m));
    cursor = wall + 9;
  }
  return out;
}

/// Parses a trajectory file (v2) or a single-measurement v1 file (upgraded
/// to one entry labeled "baseline").  Returns an empty list for missing or
/// unrecognized files.
std::vector<TrajectoryEntry> load_trajectory(const std::string& path) {
  const std::string text = read_file(path);
  std::vector<TrajectoryEntry> entries;
  if (text.empty()) return entries;
  const std::string schema = scan_string(text, "schema", 0, text.size());
  if (schema == "minim-bench-trajectory-v1") {
    TrajectoryEntry entry;
    entry.label = "baseline";
    entry.config_json = scan_object(text, "config", 0, text.size());
    entry.benchmarks = scan_benchmarks(text, 0, text.size());
    entries.push_back(std::move(entry));
    return entries;
  }
  if (schema != "minim-bench-trajectory-v2") return entries;
  std::size_t cursor = text.find("\"entries\":");
  while (cursor != std::string::npos) {
    const std::size_t at = text.find("\"label\":", cursor);
    if (at == std::string::npos) break;
    std::size_t until = text.find("\"label\":", at + 1);
    if (until == std::string::npos) until = text.size();
    TrajectoryEntry entry;
    entry.label = scan_string(text, "label", at, until);
    entry.config_json = scan_object(text, "config", at, until);
    entry.benchmarks = scan_benchmarks(text, at, until);
    entries.push_back(std::move(entry));
    cursor = until == text.size() ? std::string::npos : until;
  }
  return entries;
}

void write_trajectory(std::ostream& out, const std::vector<TrajectoryEntry>& entries) {
  out << "{\n  \"schema\": \"minim-bench-trajectory-v2\",\n  \"entries\": [\n";
  for (std::size_t e = 0; e < entries.size(); ++e) {
    const TrajectoryEntry& entry = entries[e];
    out << "    {\n      \"label\": \"" << entry.label << "\",\n"
        << "      \"config\": " << entry.config_json << ",\n"
        << "      \"benchmarks\": [\n";
    for (std::size_t i = 0; i < entry.benchmarks.size(); ++i) {
      out << "        {\"name\": \"" << entry.benchmarks[i].name
          << "\", \"wall_s\": " << util::fmt_fixed(entry.benchmarks[i].wall_s, 3)
          << "}" << (i + 1 < entry.benchmarks.size() ? "," : "") << "\n";
    }
    out << "      ]\n    }" << (e + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options options(argc, argv);
  sim::SweepOptions sweep;
  sweep.runs = static_cast<std::size_t>(options.get_int("runs", 2));
  sweep.seed = static_cast<std::uint64_t>(options.get_int("seed", 2001));
  sweep.threads = static_cast<std::size_t>(options.get_int("threads", 0));
  const auto trials = static_cast<std::size_t>(options.get_int("trials", 2));
  const std::string out_path = options.get("out", "BENCH_sweep.json");
  const bool check = options.has("check");
  const std::string check_path =
      options.get("check", "") == "true" || options.get("check", "").empty()
          ? out_path
          : options.get("check", out_path);
  const double check_factor = options.get_double("check-factor", 1.5);

  // Resolve the baseline/trajectory before spending minutes measuring: a
  // missing baseline in check mode or an unparseable --out file (which an
  // append would silently overwrite) must fail immediately.
  std::vector<TrajectoryEntry> trajectory =
      load_trajectory(check ? check_path : out_path);
  if (check && trajectory.empty()) {
    std::cerr << "--check: no baseline entries in " << check_path << "\n";
    return 1;
  }
  if (!check && trajectory.empty() && !read_file(out_path).empty()) {
    std::cerr << out_path
              << " exists but is not a recognizable trajectory; refusing to "
                 "overwrite it\n";
    return 1;
  }

  std::cout << "=== Perf trajectory (runs=" << sweep.runs
            << ", trials=" << trials << ") ===\n";

  std::vector<Measurement> measurements;

  // The exact sweeps bench_fig10_join runs (paper-size x-grids).
  measurements.push_back(timed("bench.fig10_join", [&] {
    const std::vector<double> ns{40, 50, 60, 70, 80, 90, 100, 110, 120};
    const std::vector<double> avg_ranges{7.5, 17.5, 27.5, 37.5, 47.5, 57.5, 67.5};
    sim::SweepOptions all = sweep;
    all.strategies = {"minim", "cp", "bbb"};
    sim::SweepOptions distributed = sweep;
    distributed.strategies = {"minim", "cp"};
    sim::sweep_join_vs_n(ns, all);
    sim::sweep_join_vs_n(ns, distributed);
    sim::sweep_join_vs_avg_range(avg_ranges, all);
    sim::sweep_join_vs_avg_range(avg_ranges, distributed);
  }));

  // The exact sweeps bench_fig11_power_increase runs.
  measurements.push_back(timed("bench.fig11_power_increase", [&] {
    const std::vector<double> factors{1.0, 1.5, 2.0, 2.5, 3.0,  3.5,
                                      4.0, 4.5, 5.0, 5.5, 6.0};
    sim::SweepOptions all = sweep;
    all.strategies = {"minim", "cp", "cp-exact", "bbb"};
    sim::SweepOptions distributed = sweep;
    distributed.strategies = {"minim", "cp"};
    sim::sweep_power_vs_raise_factor(factors, all);
    sim::sweep_power_vs_raise_factor(factors, distributed);
  }));

  // The grid-study default grid (bench/grid_study.cpp).
  measurements.push_back(timed("bench.grid_study", [&] {
    sim::ExperimentGrid grid;
    grid.base.kind = sim::ScenarioKind::kPower;
    grid.axes.push_back(sim::GridAxis{
        "n", {40, 60, 80, 100}, [](sim::ScenarioSpec& spec, double x) {
          spec.workload.n = static_cast<std::size_t>(x);
        }});
    grid.axes.push_back(sim::GridAxis{
        "raise_factor", {1.5, 2.5, 3.5, 4.5, 5.5},
        [](sim::ScenarioSpec& spec, double x) { spec.raise_factor = x; }});
    sim::ExperimentOptions run;
    run.trials = trials;
    run.seed = sweep.seed;
    run.threads = sweep.threads;
    sim::Experiment(std::move(grid)).run(run);
  }));

  if (check) {
    const TrajectoryEntry& baseline = trajectory.back();
    std::cout << "checking against entry \"" << baseline.label << "\" of "
              << check_path << " (factor " << util::fmt_fixed(check_factor, 2)
              << ")\n";
    bool ok = true;
    for (const Measurement& m : measurements) {
      const auto ref = std::find_if(
          baseline.benchmarks.begin(), baseline.benchmarks.end(),
          [&m](const Measurement& b) { return b.name == m.name; });
      if (ref == baseline.benchmarks.end()) {
        std::cout << "  " << m.name << ": no baseline (skipped)\n";
        continue;
      }
      const bool regressed = m.wall_s > ref->wall_s * check_factor;
      std::cout << "  " << m.name << ": " << util::fmt_fixed(m.wall_s, 2)
                << " s vs baseline " << util::fmt_fixed(ref->wall_s, 2) << " s"
                << (regressed ? "  REGRESSION" : "") << "\n";
      ok = ok && !regressed;
    }
    std::cout << (ok ? "perf check: PASS\n" : "perf check: FAIL\n");
    return ok ? 0 : 1;
  }

  std::ostringstream config;
  config << "{\"runs\": " << sweep.runs << ", \"trials\": " << trials
         << ", \"threads\": "
         << (sweep.threads ? sweep.threads : std::thread::hardware_concurrency())
         << ", \"seed\": " << sweep.seed << "}";
  TrajectoryEntry entry;
  entry.label = options.get("label", "run");
  entry.config_json = config.str();
  entry.benchmarks = measurements;
  trajectory.push_back(std::move(entry));

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 1;
  }
  write_trajectory(out, trajectory);
  std::cout << "[json] wrote " << out_path << " (" << trajectory.size()
            << (trajectory.size() == 1 ? " entry" : " entries") << ")\n";
  return 0;
}
