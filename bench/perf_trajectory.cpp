// Perf-trajectory harness: times the repo's slowest bench workloads — the
// paper-size x-grids behind the fig10_join / fig11_power_increase smokes,
// plus the grid-study engine — and records the wall clocks in
// BENCH_sweep.json (schema v2: an append-only *trajectory* of labeled
// entries, so the committed file shows each optimization's before/after).
//
// Modes:
//   default       run the benches and append a labeled entry to --out
//                 (a v1 file is upgraded in place, its measurement kept as
//                 the "baseline" entry).  Unless --threads pins a single
//                 pool size, every benchmark is measured at 1 thread AND at
//                 hardware concurrency (suffix "@tN"), so the trajectory
//                 tracks parallel scaling alongside serial wall-clock.
//   --check[=F]   run the benches (at --threads, default 1) and compare
//                 against the most recent entry of F that covers them
//                 (default: the --out file); exit 1 when any benchmark's
//                 wall clock exceeds baseline * --check-factor.  Nothing is
//                 written.  This is the CI regression gate.
//
// Options:
//   --runs=N          Monte-Carlo runs per figure point (default 2, = CI smoke)
//   --trials=N        trials per grid-study point (default 2)
//   --threads=T       pool size (record mode default: sweep {1, hardware})
//   --seed=S          master seed (default 2001)
//   --label=NAME      entry label (default "run")
//   --out=FILE        trajectory path (default BENCH_sweep.json)
//   --check[=FILE]    compare mode (see above)
//   --check-factor=X  allowed slowdown factor (default 1.5 — generous,
//                     CI machines are noisy)

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "../bench/bench_util.hpp"
#include "../bench/trajectory.hpp"
#include "sim/experiment.hpp"
#include "sim/sweeps.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace {

using namespace minim;
using bench::Measurement;
using bench::TrajectoryEntry;

template <typename Fn>
Measurement timed(const std::string& name, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::cout << "  " << name << ": " << util::fmt_fixed(elapsed, 2) << " s\n";
  Measurement m;
  m.name = name;
  m.wall_s = elapsed;
  return m;
}

/// The three benchmark workloads at one pool size.  `suffix` is "" for the
/// canonical single-thread measurements and "@tN" for the scaling ones.
std::vector<Measurement> run_benchmarks(const sim::SweepOptions& sweep,
                                        std::size_t trials,
                                        const std::string& suffix) {
  std::vector<Measurement> measurements;

  // The exact sweeps bench_fig10_join runs (paper-size x-grids; the
  // distributed-only sub-figures are filtered, not re-simulated).
  measurements.push_back(timed("bench.fig10_join" + suffix, [&] {
    const std::vector<double> ns{40, 50, 60, 70, 80, 90, 100, 110, 120};
    const std::vector<double> avg_ranges{7.5, 17.5, 27.5, 37.5, 47.5, 57.5, 67.5};
    sim::SweepOptions all = sweep;
    all.strategies = {"minim", "cp", "bbb"};
    sim::sweep_join_vs_n(ns, all);
    sim::sweep_join_vs_avg_range(avg_ranges, all);
  }));

  // The exact sweep bench_fig11_power_increase runs.
  measurements.push_back(timed("bench.fig11_power_increase" + suffix, [&] {
    const std::vector<double> factors{1.0, 1.5, 2.0, 2.5, 3.0,  3.5,
                                      4.0, 4.5, 5.0, 5.5, 6.0};
    sim::SweepOptions all = sweep;
    all.strategies = {"minim", "cp", "cp-exact", "bbb"};
    sim::sweep_power_vs_raise_factor(factors, all);
  }));

  // The grid-study default grid (bench/grid_study.cpp).
  measurements.push_back(timed("bench.grid_study" + suffix, [&] {
    sim::ExperimentGrid grid;
    grid.base.kind = sim::ScenarioKind::kPower;
    grid.axes.push_back(sim::GridAxis{
        "n", {40, 60, 80, 100}, [](sim::ScenarioSpec& spec, double x) {
          spec.workload.n = static_cast<std::size_t>(x);
        }});
    grid.axes.push_back(sim::GridAxis{
        "raise_factor", {1.5, 2.5, 3.5, 4.5, 5.5},
        [](sim::ScenarioSpec& spec, double x) { spec.raise_factor = x; }});
    sim::ExperimentOptions run;
    run.trials = trials;
    run.seed = sweep.seed;
    run.threads = sweep.threads;
    sim::Experiment(std::move(grid)).run(run);
  }));

  return measurements;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options options(argc, argv);
  sim::SweepOptions sweep;
  sweep.runs = static_cast<std::size_t>(options.get_int("runs", 2));
  sweep.seed = static_cast<std::uint64_t>(options.get_int("seed", 2001));
  const auto trials = static_cast<std::size_t>(options.get_int("trials", 2));
  const bool threads_pinned = options.has("threads");
  const auto pinned_threads =
      static_cast<std::size_t>(options.get_int("threads", 0));
  const std::string out_path = options.get("out", "BENCH_sweep.json");
  const bool check = options.has("check");
  const std::string check_path =
      options.get("check", "") == "true" || options.get("check", "").empty()
          ? out_path
          : options.get("check", out_path);
  const double check_factor = options.get_double("check-factor", 1.5);

  // Resolve the baseline/trajectory before spending minutes measuring: a
  // missing baseline in check mode or an unparseable --out file (which an
  // append would silently overwrite) must fail immediately.
  std::vector<TrajectoryEntry> trajectory =
      bench::load_trajectory(check ? check_path : out_path);
  if (check && trajectory.empty()) {
    std::cerr << "--check: no baseline entries in " << check_path << "\n";
    return 1;
  }
  if (!check && trajectory.empty() && !bench::read_file(out_path).empty()) {
    std::cerr << out_path
              << " exists but is not a recognizable trajectory; refusing to "
                 "overwrite it\n";
    return 1;
  }

  const std::size_t hardware =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::vector<std::size_t> thread_counts;
  if (check) {
    // The canonical (unsuffixed) baselines are serial; default the gate to
    // 1 thread so a multi-core machine cannot mask a serial regression.
    thread_counts.push_back(threads_pinned ? pinned_threads : 1);
  } else if (threads_pinned) {
    thread_counts.push_back(pinned_threads);
  } else {
    // Record mode sweeps serial and full-parallel so the trajectory also
    // tracks parallel scaling.
    thread_counts.push_back(1);
    if (hardware > 1) thread_counts.push_back(hardware);
  }

  std::cout << "=== Perf trajectory (runs=" << sweep.runs
            << ", trials=" << trials << ") ===\n";

  std::vector<Measurement> measurements;
  for (const std::size_t threads : thread_counts) {
    sim::SweepOptions pool = sweep;
    pool.threads = threads;
    // Measurement names carry the resolved pool size: canonical names are
    // serial-only, so a --threads=8 run can never poison a serial baseline.
    const std::size_t resolved = threads ? threads : hardware;
    const std::string suffix =
        resolved == 1 ? "" : "@t" + std::to_string(resolved);
    auto batch = run_benchmarks(pool, trials, suffix);
    measurements.insert(measurements.end(), batch.begin(), batch.end());
  }

  if (check) {
    std::cout << "checking against " << check_path << " (factor "
              << util::fmt_fixed(check_factor, 2) << ")\n";
    // The shared gate (bench/trajectory.hpp): wall clocks above
    // baseline * factor fail, "@tN" scaling names skip single-core
    // baselines, and a run where nothing compared (and nothing was
    // legitimately skipped) fails rather than passing vacuously.
    const bench::CheckResult outcome =
        bench::check_measurements(trajectory, measurements, check_factor);
    if (outcome.compared == 0 && outcome.skipped == 0)
      std::cout << "perf check: FAIL (no measurement had a baseline)\n";
    else
      std::cout << (outcome.pass() ? "perf check: PASS\n"
                                   : "perf check: FAIL\n");
    return outcome.pass() ? 0 : 1;
  }

  std::ostringstream config;
  config << "{\"runs\": " << sweep.runs << ", \"trials\": " << trials
         << ", \"threads\": [";
  for (std::size_t i = 0; i < thread_counts.size(); ++i)
    config << (i ? ", " : "")
           << (thread_counts[i] ? thread_counts[i] : hardware);
  config << "], \"seed\": " << sweep.seed;
  // A 1-core machine collapses the threads sweep to the serial column; mark
  // the entry so --check on a multi-core machine skips scaling comparisons
  // against it (bench::entry_single_core).
  if (hardware == 1) config << ", \"single_core\": true";
  config << "}";
  TrajectoryEntry entry;
  entry.label = options.get("label", "run");
  entry.config_json = config.str();
  entry.benchmarks = measurements;
  trajectory.push_back(std::move(entry));

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 1;
  }
  bench::write_trajectory(out, trajectory);
  std::cout << "[json] wrote " << out_path << " (" << trajectory.size()
            << (trajectory.size() == 1 ? " entry" : " entries") << ")\n";
  return 0;
}
