// Steady-state churn comparison — the paper's Section 5 asks "how well do
// the minimal recoding strategies perform for a long sequence of events in
// an ad-hoc network?"; its sweeps answer with phased workloads.  This bench
// answers in the open-system regime: Poisson arrivals, exponential
// lifetimes, random-waypoint movement and power duty-cycling, all running
// concurrently for a long horizon.
//
// Reported per strategy: recodings per event (overall and by event type),
// the time-averaged and peak max color index, and end-state validity.
// Identical event randomness is replayed for every strategy.

#include <iostream>

#include "sim/churn.hpp"
#include "strategies/factory.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace minim;
  const util::Options options(argc, argv);

  sim::ChurnParams params;
  params.duration = options.get_double("duration", options.get_bool("fast", false) ? 400 : 2000);
  params.arrival_rate = options.get_double("arrival-rate", 0.25);
  params.mean_lifetime = options.get_double("mean-lifetime", 240);
  params.move_rate = options.get_double("move-rate", 0.02);
  params.power_rate = options.get_double("power-rate", 0.01);
  const auto runs = static_cast<std::size_t>(
      options.get_int("runs", options.get_bool("fast", false) ? 3 : 10));
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 314));

  std::cout << "=== Steady-state churn (open system) ===\n"
            << "duration " << params.duration << ", arrivals " << params.arrival_rate
            << "/t, mean lifetime " << params.mean_lifetime
            << " (equilibrium ~" << params.arrival_rate * params.mean_lifetime
            << " nodes), " << runs << " runs\n\n";

  util::TextTable table("Per-strategy steady-state metrics (means over runs)");
  table.set_header({"strategy", "events", "recodings", "rec/event", "rec@join",
                    "rec@move", "rec@pow+", "avg max color", "peak nodes", "valid"});

  for (const char* name : {"minim", "cp", "cp-exact", "bbb"}) {
    util::RunningStats events;
    util::RunningStats recodings;
    util::RunningStats join_rec;
    util::RunningStats move_rec;
    util::RunningStats pow_rec;
    util::RunningStats avg_color;
    util::RunningStats peak_nodes;
    bool all_valid = true;

    for (std::size_t run = 0; run < runs; ++run) {
      const auto strategy = strategies::make_strategy(name);
      util::Rng rng = util::Rng::for_stream(seed, run);  // same stream per name
      const auto result = sim::run_churn(params, *strategy, rng);
      using core::EventType;
      events.add(static_cast<double>(result.totals.events));
      recodings.add(static_cast<double>(result.totals.recodings));
      join_rec.add(static_cast<double>(
          result.totals.recodings_by_type[static_cast<std::size_t>(EventType::kJoin)]));
      move_rec.add(static_cast<double>(
          result.totals.recodings_by_type[static_cast<std::size_t>(EventType::kMove)]));
      pow_rec.add(static_cast<double>(result.totals.recodings_by_type[
          static_cast<std::size_t>(EventType::kPowerIncrease)]));
      double color_sum = 0;
      for (const auto& sample : result.samples)
        color_sum += static_cast<double>(sample.max_color);
      avg_color.add(color_sum / static_cast<double>(result.samples.size()));
      peak_nodes.add(static_cast<double>(result.peak_nodes));
      all_valid = all_valid && result.final_valid;
    }
    table.add_row({name, util::fmt_fixed(events.mean(), 0),
                   util::fmt_fixed(recodings.mean(), 0),
                   util::fmt_fixed(recodings.mean() / events.mean(), 3),
                   util::fmt_fixed(join_rec.mean(), 0),
                   util::fmt_fixed(move_rec.mean(), 0),
                   util::fmt_fixed(pow_rec.mean(), 0),
                   util::fmt_fixed(avg_color.mean(), 1),
                   util::fmt_fixed(peak_nodes.mean(), 0),
                   all_valid ? "yes" : "NO"});
  }
  std::cout << table.render() << "\n"
            << "Reading: Minim's rec/event is the provable per-event floor; "
               "BBB's near-optimal colors cost two orders of magnitude more "
               "recodings.\n";
  return 0;
}
