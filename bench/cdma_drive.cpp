// cdma_drive: the standalone experiment-orchestrator front-end.
//
// Describes an arbitrary scenario grid on the command line, runs it — in
// process, or as a driver across self-spawned worker processes with
// --orchestrate=K — and prints the per-cell summary table.  The merged
// orchestrated result is bit-identical to the single-process run for any
// split of the (grid point x trial) space, including under injected worker
// crashes with retry (--crash-unit).
//
// Grid description:
//   --scenario=KIND     join | power | move | churn (default join)
//   --axes=LIST         comma-separated axes, each "name:v1:v2:...", e.g.
//                         --axes=n:40:60:80,raise_factor:1.5:2.5:3.5
//                       (grid = cartesian product, axis-0-major).  Axis
//                       vocabulary: n, raise_factor, max_displacement,
//                       move_rounds, min_range, max_range, avg_range,
//                       clusters, cluster_sigma, churn_duration,
//                       arrival_rate, mean_lifetime.  Default: n:40:60:80.
//   --strategies=...    strategy names (default minim,cp,bbb)
//   --trials=N          Monte-Carlo trials per grid point (default 100)
//   --seed=S            master seed (default 2001)
//   --threads=T         worker threads per process (default hardware)
//
// Output:
//   --save-experiment=F write the merged per-trial experiment CSV to F
//   --csv-dir=DIR       write DIR/cdma_drive.csv (one summary row per cell)
//
// Orchestration (see bench_util.hpp): --orchestrate=K, --units, --split,
// --max-attempts, --worker-timeout, --shard-dir, --resume, --keep-shards,
// --crash-unit.
//
// Serving (see src/serve/):
//   --serve             run the online assignment engine instead of a grid
//   --transport=T       stdin (default) | tcp | trace
//   --trace=F           request file for --transport=trace
//   --port=P            TCP port for --transport=tcp (default 0 = ephemeral)
//   --strategy=NAME     recoding strategy (default minim)
//   --recolor-threads=N component-parallel batched recoloring for
//                       bbb-bounded (1 = serial, 0 = hardware cores);
//                       bit-identical results at every setting
//   --validate          CA1/CA2 check after every event (slow)
//   --quiet             ingest without response lines
//   --flush-each        apply + flush per request line (no pipelining)
//   --max-batch=K       most events coalesced per engine batch (default 512)
//   --record-trace=F    write grid point 0's workload as a replayable trace
//
// Examples:
//   cdma_drive --axes=n:40:80:120 --trials=200
//   cdma_drive --scenario=power --axes=n:60:100,raise_factor:2:4
//              --orchestrate=8 --split=auto --save-experiment=power_grid.csv
//   cdma_drive --scenario=move --axes=n:80 --record-trace=move80.trace
//   cdma_drive --serve --transport=tcp --strategy=bbb-bounded

#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "../bench/bench_util.hpp"
#include "serve/engine.hpp"
#include "serve/session.hpp"
#include "serve/transport.hpp"
#include "sim/experiment.hpp"
#include "sim/trace.hpp"
#include "util/csv.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace minim;

sim::ScenarioKind scenario_from(const std::string& name) {
  if (name == "join") return sim::ScenarioKind::kJoin;
  if (name == "power") return sim::ScenarioKind::kPower;
  if (name == "move") return sim::ScenarioKind::kMove;
  if (name == "churn") return sim::ScenarioKind::kChurn;
  std::cerr << "unknown scenario \"" << name
            << "\" (expected join|power|move|churn)\n";
  std::exit(2);
}

/// The named-axis vocabulary: how one CLI axis name maps onto the spec.
sim::GridAxis axis_from_name(const std::string& name,
                             std::vector<double> values) {
  using Spec = sim::ScenarioSpec;
  auto axis = [&](void (*apply)(Spec&, double)) {
    return sim::GridAxis{name, std::move(values), apply};
  };
  if (name == "n")
    return axis([](Spec& s, double x) {
      s.workload.n = static_cast<std::size_t>(x);
    });
  if (name == "raise_factor")
    return axis([](Spec& s, double x) { s.raise_factor = x; });
  if (name == "max_displacement")
    return axis([](Spec& s, double x) { s.max_displacement = x; });
  if (name == "move_rounds")
    return axis([](Spec& s, double x) {
      s.move_rounds = static_cast<std::size_t>(x);
    });
  if (name == "min_range")
    return axis([](Spec& s, double x) { s.workload.min_range = x; });
  if (name == "max_range")
    return axis([](Spec& s, double x) { s.workload.max_range = x; });
  if (name == "avg_range")
    return axis([](Spec& s, double x) {
      // The paper's Fig 10(d-f) parameterization: a 5-unit spread around x.
      s.workload.min_range = x - 2.5;
      s.workload.max_range = x + 2.5;
    });
  if (name == "clusters")
    return axis([](Spec& s, double x) {
      s.workload.placement = sim::Placement::kClustered;
      s.workload.cluster_count =
          std::max<std::size_t>(1, static_cast<std::size_t>(x));
    });
  if (name == "cluster_sigma")
    return axis([](Spec& s, double x) {
      s.workload.placement = sim::Placement::kClustered;
      s.workload.cluster_sigma = x;
    });
  if (name == "churn_duration")
    return axis([](Spec& s, double x) { s.churn.duration = x; });
  if (name == "arrival_rate")
    return axis([](Spec& s, double x) { s.churn.arrival_rate = x; });
  if (name == "mean_lifetime")
    return axis([](Spec& s, double x) { s.churn.mean_lifetime = x; });
  std::cerr << "unknown axis \"" << name
            << "\" (expected n|raise_factor|max_displacement|move_rounds|"
               "min_range|max_range|avg_range|clusters|cluster_sigma|"
               "churn_duration|arrival_rate|mean_lifetime)\n";
  std::exit(2);
}

/// Parses "--axes=name:v1:v2,name:v1" into grid axes.
std::vector<sim::GridAxis> axes_from(const util::Options& options) {
  const std::string raw = options.get("axes", "n:40:60:80");
  std::vector<sim::GridAxis> axes;
  for (const std::string& field : bench::split_list(raw)) {
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= field.size()) {
      const std::size_t colon = field.find(':', start);
      parts.push_back(field.substr(
          start, colon == std::string::npos ? colon : colon - start));
      if (colon == std::string::npos) break;
      start = colon + 1;
    }
    if (parts.size() < 2) {
      std::cerr << "--axes entry \"" << field << "\" wants name:v1[:v2...]\n";
      std::exit(2);
    }
    std::vector<double> values;
    for (std::size_t i = 1; i < parts.size(); ++i) {
      try {
        values.push_back(std::stod(parts[i]));
      } catch (const std::exception&) {
        std::cerr << "--axes entry \"" << field << "\": bad value \""
                  << parts[i] << "\"\n";
        std::exit(2);
      }
    }
    axes.push_back(axis_from_name(parts[0], std::move(values)));
  }
  return axes;
}

sim::Experiment make_experiment(const util::Options& options) {
  sim::ExperimentGrid grid;
  grid.base.kind = scenario_from(options.get("scenario", "join"));
  grid.axes = axes_from(options);
  grid.strategies =
      bench::string_list_from(options, "strategies", {"minim", "cp", "bbb"});
  return sim::Experiment(std::move(grid));
}

void print_result(const sim::ExperimentResult& result,
                  const util::Options& options) {
  util::TextTable table("cdma_drive: per-cell summary (mean +- stddev)");
  std::vector<std::string> header = result.axis_names;
  for (const char* column : {"strategy", "events", "recodings", "max color",
                             "trials"})
    header.push_back(column);
  table.set_header(header);

  std::vector<std::vector<std::string>> csv_rows;
  for (std::size_t p = 0; p < result.point_count(); ++p)
    for (std::size_t s = 0; s < result.strategy_count(); ++s) {
      const sim::TotalsSummary summary = sim::summarize(result.cell(p, s));
      std::vector<std::string> row;
      for (double coord : result.points[p])
        row.push_back(util::fmt_fixed(coord, 2));
      row.push_back(result.strategies[s]);
      row.push_back(util::fmt_fixed(summary.events.mean(), 2) + " +- " +
                    util::fmt_fixed(summary.events.stddev(), 2));
      row.push_back(util::fmt_fixed(summary.recodings.mean(), 2) + " +- " +
                    util::fmt_fixed(summary.recodings.stddev(), 2));
      row.push_back(util::fmt_fixed(summary.max_color.mean(), 2) + " +- " +
                    util::fmt_fixed(summary.max_color.stddev(), 2));
      row.push_back(std::to_string(summary.events.count()));
      table.add_row(row);

      std::vector<std::string> csv_row;
      for (double coord : result.points[p])
        csv_row.push_back(util::fmt_fixed(coord, 3));
      csv_row.push_back(result.strategies[s]);
      csv_row.push_back(std::to_string(summary.events.count()));
      csv_row.push_back(util::fmt_fixed(summary.events.mean(), 6));
      csv_row.push_back(util::fmt_fixed(summary.recodings.mean(), 6));
      csv_row.push_back(util::fmt_fixed(summary.recodings.stddev(), 6));
      csv_row.push_back(util::fmt_fixed(summary.max_color.mean(), 6));
      csv_rows.push_back(std::move(csv_row));
    }
  std::cout << table.render() << "\n";

  const std::string csv_dir = options.get("csv-dir", "");
  if (!csv_dir.empty()) {
    auto stream = util::open_csv(csv_dir + "/cdma_drive.csv");
    util::CsvWriter csv(stream);
    std::vector<std::string> csv_header = result.axis_names;
    for (const char* column : {"strategy", "trials", "events_mean",
                               "recodings_mean", "recodings_stddev",
                               "max_color_mean"})
      csv_header.push_back(column);
    csv.header(csv_header);
    for (const auto& row : csv_rows) csv.row(row);
    std::cout << "[csv] wrote " << csv_dir << "/cdma_drive.csv\n";
  }
}

/// --record-trace=F: dump grid point 0's workload as a replayable trace.
int run_record_trace(const std::string& path, const util::Options& options,
                     const sim::Experiment& experiment) {
  sim::ScenarioSpec spec = experiment.spec_for_point(0);
  if (spec.kind == sim::ScenarioKind::kChurn) {
    std::cerr << "--record-trace: churn has no phased workload to record "
                 "(use join|power|move)\n";
    return 2;
  }
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 2001));
  util::Rng rng = util::Rng::for_stream(seed, 0);
  const sim::Workload workload = sim::make_scenario_workload(spec, rng);
  const sim::Trace trace = sim::trace_from_workload(workload);

  std::ofstream out(path);
  if (!out) {
    std::cerr << "--record-trace: cannot open \"" << path << "\"\n";
    return 2;
  }
  out << sim::serialize_trace(trace);
  std::cout << "[trace] wrote " << path << " (" << trace.size()
            << " events, scenario " << options.get("scenario", "join")
            << ", grid point 0, seed " << seed << ")\n";
  return 0;
}

/// --serve: the online assignment engine over one of the three transports.
int run_serve(const util::Options& options) {
  const std::string strategy = options.get("strategy", "minim");
  serve::AssignmentEngine::Params params;
  params.validate = options.has("validate");
  params.recolor_threads = static_cast<std::size_t>(
      std::max<long long>(0, options.get_int("recolor-threads", 1)));
  serve::AssignmentEngine engine(strategy, params);

  const std::string kind = options.get("transport", "stdin");
  std::unique_ptr<serve::Transport> transport;
  if (kind == "stdin") {
    // Unsynced iostreams let the stream transport see how much of a piped
    // request burst is already buffered (pipelined batching); stdout is
    // flushed once per burst by the session either way.
    std::ios::sync_with_stdio(false);
    transport = std::make_unique<serve::StreamTransport>(std::cin, std::cout,
                                                         "stdin");
  } else if (kind == "tcp") {
    auto tcp = std::make_unique<serve::TcpServerTransport>(
        static_cast<std::uint16_t>(options.get_int("port", 0)));
    // The port line goes to stderr immediately so a script can connect
    // before any client exists (stdout stays protocol-free).
    std::cerr << "[serve] listening on " << tcp->describe() << "\n";
    transport = std::move(tcp);
  } else if (kind == "trace") {
    const std::string path = options.get("trace", "");
    if (path.empty()) {
      std::cerr << "--transport=trace wants --trace=<path>\n";
      return 2;
    }
    transport = std::make_unique<serve::TraceFileTransport>(path, std::cout);
  } else {
    std::cerr << "unknown --transport \"" << kind
              << "\" (expected stdin|tcp|trace)\n";
    return 2;
  }

  serve::SessionOptions session;
  session.echo = !options.has("quiet");
  session.flush_each = options.has("flush-each");
  session.max_batch = static_cast<std::size_t>(
      std::max<long long>(1, options.get_int("max-batch", 512)));
  const serve::SessionStats stats = serve::serve_session(engine, *transport,
                                                         session);

  std::cerr << "[serve] " << transport->describe() << " strategy=" << strategy;
  if (params.recolor_threads != 1)
    std::cerr << " recolor-threads=" << params.recolor_threads;
  std::cerr << ": lines=" << stats.lines << " events=" << stats.events
            << " queries=" << stats.queries << " errors=" << stats.errors
            << " batches=" << stats.batches
            << " coalesced=" << stats.coalesced_events << "\n";
  using Kind = sim::TraceEvent::Kind;
  for (Kind k : {Kind::kJoin, Kind::kLeave, Kind::kMove, Kind::kPower}) {
    const util::LatencyHistogram& h = engine.latency(k);
    if (h.count() == 0) continue;
    std::cerr << "[serve] latency " << sim::to_string(k) << " "
              << h.summary(1e-3, "us") << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options options(argc, argv);
  // A fleet agent serves units for a remote driver; nothing else in this
  // harness applies to that invocation.
  if (bench::is_fleet_agent(options)) return bench::run_fleet_agent(options);

  if (options.has("serve")) return run_serve(options);

  sim::ExperimentOptions run;
  run.trials = static_cast<std::size_t>(options.get_int("trials", 100));
  run.seed = static_cast<std::uint64_t>(options.get_int("seed", 2001));
  run.threads = static_cast<std::size_t>(options.get_int("threads", 0));

  const sim::Experiment experiment = make_experiment(options);

  const std::string record = options.get("record-trace", "");
  if (!record.empty()) return run_record_trace(record, options, experiment);

  if (bench::is_worker(options)) {
    if (bench::run_worker_unit(options, experiment, run, "cdma_drive"))
      return 0;
    std::cerr << "unknown --unit-tag for cdma_drive\n";
    return 2;
  }

  std::cout << "=== cdma_drive: scenario grid "
            << (options.get_int("orchestrate", 0) > 0 ? "(orchestrated)"
                                                      : "(in-process)")
            << " ===\n"
            << experiment.points().size() << " grid points x "
            << experiment.grid().strategies.size() << " strategies x "
            << run.trials << " trials, seed " << run.seed << "\n\n";

  const sim::ExperimentResult result =
      bench::run_experiment_cli(options, experiment, run, "cdma_drive");

  const std::string save = options.get("save-experiment", "");
  if (!save.empty()) {
    sim::write_experiment_csv_file(result, save);
    std::cout << "[csv] wrote " << save << " (full per-trial experiment)\n";
  }
  print_result(result, options);
  return 0;
}
