// Batched scenario sweeps through sim::run_scenario_sweep: every scenario
// kind (join / power / move / churn) for each strategy, N Monte-Carlo trials
// fanned across the thread pool, with per-counter mean +- stddev summaries
// and the parallel-vs-serial wall-clock speedup.
//
// Options (all optional):
//   --trials=N          trials per (scenario, strategy) cell (default 100)
//   --seed=S            master seed (default 2001)
//   --threads=T         pool size (default 0 = hardware concurrency)
//   --n=N               nodes joined per trial (default 100; churn ignores it)
//   --churn-duration=D  churn horizon (default 400)
//   --serial-check      re-run every cell on 1 thread and verify the summary
//                       is bit-identical (the sweep runner's contract)

#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "sim/sweep_runner.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace minim;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

std::string fmt_stat(const util::RunningStats& stat) {
  return util::fmt_fixed(stat.mean(), 2) + " +- " + util::fmt_fixed(stat.stddev(), 2);
}

bool summaries_equal(const sim::TotalsSummary& a, const sim::TotalsSummary& b) {
  auto same = [](const util::RunningStats& x, const util::RunningStats& y) {
    return x.count() == y.count() && x.mean() == y.mean() &&
           x.variance() == y.variance() && x.min() == y.min() && x.max() == y.max();
  };
  if (!same(a.events, b.events) || !same(a.recodings, b.recodings) ||
      !same(a.messages, b.messages) || !same(a.max_color, b.max_color))
    return false;
  for (std::size_t t = 0; t < a.recodings_by_type.size(); ++t)
    if (!same(a.events_by_type[t], b.events_by_type[t]) ||
        !same(a.recodings_by_type[t], b.recodings_by_type[t]))
      return false;
  return true;
}

const char* kind_name(sim::ScenarioKind kind) {
  switch (kind) {
    case sim::ScenarioKind::kJoin: return "join";
    case sim::ScenarioKind::kPower: return "power";
    case sim::ScenarioKind::kMove: return "move";
    case sim::ScenarioKind::kChurn: return "churn";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options options(argc, argv);
  sim::SweepRunnerOptions sweep;
  sweep.trials = static_cast<std::size_t>(options.get_int("trials", 100));
  sweep.seed = static_cast<std::uint64_t>(options.get_int("seed", 2001));
  sweep.threads = static_cast<std::size_t>(options.get_int("threads", 0));
  const auto n = static_cast<std::size_t>(options.get_int("n", 100));
  const double churn_duration = options.get_double("churn-duration", 400.0);
  const bool serial_check = options.get_bool("serial-check", false);

  std::cout << "=== Scenario sweep engine ===\n"
            << sweep.trials << " trials per cell, seed " << sweep.seed << "\n\n";

  util::TextTable table("Per-scenario totals (mean +- stddev over trials)");
  table.set_header({"scenario", "strategy", "events", "recodings", "max color",
                    "wall s", "serial s"});

  double parallel_total = 0.0;
  double serial_total = 0.0;
  bool all_match = true;

  for (const sim::ScenarioKind kind :
       {sim::ScenarioKind::kJoin, sim::ScenarioKind::kPower,
        sim::ScenarioKind::kMove, sim::ScenarioKind::kChurn}) {
    for (const char* strategy : {"minim", "cp", "bbb"}) {
      sim::ScenarioSpec spec;
      spec.kind = kind;
      spec.strategy = strategy;
      spec.workload.n = n;
      spec.move_rounds = 3;
      spec.churn.duration = churn_duration;

      const auto start = std::chrono::steady_clock::now();
      const sim::SweepReport report = sim::run_scenario_sweep(spec, sweep);
      const double elapsed = seconds_since(start);
      parallel_total += elapsed;

      std::string serial_cell = "-";
      if (serial_check) {
        sim::SweepRunnerOptions serial = sweep;
        serial.threads = 1;
        const auto serial_start = std::chrono::steady_clock::now();
        const sim::SweepReport reference = sim::run_scenario_sweep(spec, serial);
        const double serial_elapsed = seconds_since(serial_start);
        serial_total += serial_elapsed;
        serial_cell = util::fmt_fixed(serial_elapsed, 2);
        if (!summaries_equal(report.summary, reference.summary)) {
          all_match = false;
          std::cerr << "MISMATCH: " << kind_name(kind) << "/" << strategy
                    << " parallel summary differs from serial\n";
        }
      }

      table.add_row({kind_name(kind), strategy, fmt_stat(report.summary.events),
                     fmt_stat(report.summary.recodings),
                     fmt_stat(report.summary.max_color),
                     util::fmt_fixed(elapsed, 2), serial_cell});
    }
  }

  std::cout << table.render() << "\n"
            << "parallel wall time: " << util::fmt_fixed(parallel_total, 2) << " s\n";
  if (serial_check) {
    std::cout << "serial wall time:   " << util::fmt_fixed(serial_total, 2)
              << " s (speedup "
              << util::fmt_fixed(serial_total / std::max(parallel_total, 1e-9), 2)
              << "x)\n"
              << (all_match ? "determinism check: PASS (bit-identical summaries)\n"
                            : "determinism check: FAIL\n");
  }
  return all_match ? 0 : 1;
}
