// Batched scenario sweeps on the unified experiment API: every scenario kind
// (join / power / move / churn) as one sim::Experiment across the strategy
// list, N Monte-Carlo trials fanned over the thread pool, with per-counter
// mean +- stddev summaries and the parallel-vs-serial wall-clock speedup.
// Each (kind, trial) workload is generated once and replayed across all
// strategies (paired comparison, no per-strategy regeneration).
//
// Options (all optional):
//   --trials=N          trials per scenario kind (default 100)
//   --seed=S            master seed (default 2001)
//   --threads=T         pool size (default 0 = hardware concurrency)
//   --n=N               nodes joined per trial (default 100; churn ignores it)
//   --churn-duration=D  churn horizon (default 400)
//   --strategies=...    strategy names (default minim,cp,bbb)
//   --serial-check      re-run every kind on 1 thread and verify the result
//                       is bit-identical (the experiment engine's contract)
//   --orchestrate=K     drive each scenario's experiment across K
//                       self-spawned worker processes (bit-identical merge;
//                       see bench_util.hpp for the full flag set)

#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "../bench/bench_util.hpp"
#include "sim/experiment.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace minim;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

std::string fmt_stat(const util::RunningStats& stat) {
  return util::fmt_fixed(stat.mean(), 2) + " +- " + util::fmt_fixed(stat.stddev(), 2);
}

bool summaries_equal(const sim::TotalsSummary& a, const sim::TotalsSummary& b) {
  auto same = [](const util::RunningStats& x, const util::RunningStats& y) {
    return x.count() == y.count() && x.mean() == y.mean() &&
           x.variance() == y.variance() && x.min() == y.min() && x.max() == y.max();
  };
  if (!same(a.events, b.events) || !same(a.recodings, b.recodings) ||
      !same(a.messages, b.messages) || !same(a.max_color, b.max_color))
    return false;
  for (std::size_t t = 0; t < a.recodings_by_type.size(); ++t)
    if (!same(a.events_by_type[t], b.events_by_type[t]) ||
        !same(a.recodings_by_type[t], b.recodings_by_type[t]))
      return false;
  return true;
}

const char* kind_name(sim::ScenarioKind kind) {
  switch (kind) {
    case sim::ScenarioKind::kJoin: return "join";
    case sim::ScenarioKind::kPower: return "power";
    case sim::ScenarioKind::kMove: return "move";
    case sim::ScenarioKind::kChurn: return "churn";
  }
  return "?";
}

constexpr sim::ScenarioKind kKinds[] = {
    sim::ScenarioKind::kJoin, sim::ScenarioKind::kPower,
    sim::ScenarioKind::kMove, sim::ScenarioKind::kChurn};

sim::Experiment make_kind_experiment(sim::ScenarioKind kind, std::size_t n,
                                     double churn_duration,
                                     const std::vector<std::string>& strategies) {
  sim::ExperimentGrid grid;
  grid.base.kind = kind;
  grid.base.workload.n = n;
  grid.base.move_rounds = 3;
  grid.base.churn.duration = churn_duration;
  grid.strategies = strategies;
  return sim::Experiment(std::move(grid));
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options options(argc, argv);
  // A fleet agent serves units for a remote driver; nothing else in this
  // harness applies to that invocation.
  if (bench::is_fleet_agent(options)) return bench::run_fleet_agent(options);
  sim::ExperimentOptions run;
  run.trials = static_cast<std::size_t>(options.get_int("trials", 100));
  run.seed = static_cast<std::uint64_t>(options.get_int("seed", 2001));
  run.threads = static_cast<std::size_t>(options.get_int("threads", 0));
  const auto n = static_cast<std::size_t>(options.get_int("n", 100));
  const double churn_duration = options.get_double("churn-duration", 400.0);
  const bool serial_check = options.get_bool("serial-check", false);
  const std::vector<std::string> strategies =
      bench::string_list_from(options, "strategies", {"minim", "cp", "bbb"});

  // Orchestration worker: each scenario kind is its own tagged experiment.
  if (bench::is_worker(options)) {
    for (const sim::ScenarioKind kind : kKinds)
      if (bench::run_worker_unit(
              options, make_kind_experiment(kind, n, churn_duration, strategies),
              run, kind_name(kind)))
        return 0;
    std::cerr << "unknown --unit-tag for scenario_sweep\n";
    return 2;
  }

  std::cout << "=== Scenario sweep engine ===\n"
            << run.trials << " trials per scenario, seed " << run.seed << "\n\n";

  util::TextTable table("Per-scenario totals (mean +- stddev over trials)");
  table.set_header({"scenario", "strategy", "events", "recodings", "max color"});
  util::TextTable timing("Per-scenario wall clock (all strategies, one engine run)");
  timing.set_header({"scenario", "wall s", "serial s"});

  double parallel_total = 0.0;
  double serial_total = 0.0;
  bool all_match = true;

  for (const sim::ScenarioKind kind : kKinds) {
    const sim::Experiment experiment =
        make_kind_experiment(kind, n, churn_duration, strategies);

    const auto start = std::chrono::steady_clock::now();
    const sim::ExperimentResult result =
        bench::run_experiment_cli(options, experiment, run, kind_name(kind));
    const double elapsed = seconds_since(start);
    parallel_total += elapsed;

    std::string serial_cell = "-";
    if (serial_check) {
      sim::ExperimentOptions serial = run;
      serial.threads = 1;
      const auto serial_start = std::chrono::steady_clock::now();
      const sim::ExperimentResult reference = experiment.run(serial);
      const double serial_elapsed = seconds_since(serial_start);
      serial_total += serial_elapsed;
      serial_cell = util::fmt_fixed(serial_elapsed, 2);
      for (std::size_t s = 0; s < strategies.size(); ++s)
        if (!summaries_equal(summarize(result.cell(0, s)),
                             summarize(reference.cell(0, s)))) {
          all_match = false;
          std::cerr << "MISMATCH: " << kind_name(kind) << "/" << strategies[s]
                    << " parallel summary differs from serial\n";
        }
    }

    for (std::size_t s = 0; s < strategies.size(); ++s) {
      const sim::TotalsSummary summary = summarize(result.cell(0, s));
      table.add_row({kind_name(kind), strategies[s], fmt_stat(summary.events),
                     fmt_stat(summary.recodings), fmt_stat(summary.max_color)});
    }
    timing.add_row({kind_name(kind), util::fmt_fixed(elapsed, 2), serial_cell});
  }

  std::cout << table.render() << "\n" << timing.render() << "\n"
            << "parallel wall time: " << util::fmt_fixed(parallel_total, 2) << " s\n";
  if (serial_check) {
    std::cout << "serial wall time:   " << util::fmt_fixed(serial_total, 2)
              << " s (speedup "
              << util::fmt_fixed(serial_total / std::max(parallel_total, 1e-9), 2)
              << "x)\n"
              << (all_match ? "determinism check: PASS (bit-identical summaries)\n"
                            : "determinism check: FAIL\n");
  }
  return all_match ? 0 : 1;
}
