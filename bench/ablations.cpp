// Ablation studies for the design choices DESIGN.md calls out:
//
//  A. Matching engine inside Minim's RecodeOnJoin: exact max-weight
//     (Hungarian, the paper) vs greedy 1/2-approx vs max-cardinality.
//     Shows that the exact solver is what delivers minimal recoding.
//  B. Old-color edge weight: the paper's 3 vs 2 vs 1 (uniform).  3 > 1+1 is
//     the smallest integer weight that protects kept colors from being
//     displaced by two weight-1 edges; weight 2 can trade a kept color for
//     two matched nodes, weight 1 ignores history entirely.
//  C. CP identity order: highest-first (paper's figures) vs lowest-first.
//  D. BBB coloring order: smallest-last vs DSATUR vs largest-first vs
//     identity.
//  E. Minim move semantics: mover keeps-preference (weight-3 edge, Fig 8)
//     vs literal leave+join (Thm 4.4.1).

#include <iostream>

#include "../bench/bench_util.hpp"
#include "core/minim.hpp"
#include "sim/replay.hpp"
#include "sim/sweeps.hpp"
#include "sim/workload.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace minim;

/// Replays join workloads under an explicitly-parameterized MinimStrategy.
void minim_variant_row(util::TextTable& table, const std::string& label,
                       const core::MinimStrategy::Params& params, std::size_t runs,
                       std::uint64_t seed, bool movement) {
  util::RunningStats colors;
  util::RunningStats recodings;
  for (std::size_t run = 0; run < runs; ++run) {
    util::Rng rng = util::Rng::for_stream(seed, run);
    sim::WorkloadParams wp;
    wp.n = movement ? 40 : 80;
    const sim::Workload workload =
        movement ? sim::make_move_workload(wp, 40.0, 3, rng)
                 : sim::make_join_workload(wp, rng);
    core::MinimStrategy strategy(params);
    const auto outcome = sim::replay(workload, strategy);
    colors.add(outcome.final_max_color());
    recodings.add(movement ? outcome.delta_recodings() : outcome.total_recodings());
  }
  table.add_row({label, util::fmt_fixed(colors.mean(), 2),
                 util::fmt_fixed(recodings.mean(), 2)});
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options options(argc, argv);
  const auto runs = static_cast<std::size_t>(
      options.get_int("runs", options.get_bool("fast", false) ? 10 : 60));
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 99));

  std::cout << "=== Ablations ===\n\n";

  // ---- A: matcher engine ----
  {
    util::TextTable table("A. Matching engine in RecodeOnJoin (80 joins)");
    table.set_header({"variant", "max color", "total recodings"});
    core::MinimStrategy::Params p;
    minim_variant_row(table, "hungarian (paper)", p, runs, seed, false);
    p.matcher = core::MinimStrategy::Matcher::kGreedy;
    minim_variant_row(table, "greedy 1/2-approx", p, runs, seed, false);
    p.matcher = core::MinimStrategy::Matcher::kCardinality;
    minim_variant_row(table, "max-cardinality", p, runs, seed, false);
    std::cout << table.render() << "\n";
  }

  // ---- B: old-color weight ----
  {
    util::TextTable table("B. Old-color edge weight (80 joins)");
    table.set_header({"variant", "max color", "total recodings"});
    for (const auto& [label, w] :
         std::vector<std::pair<std::string, matching::Weight>>{
             {"weight 3 (paper)", 3}, {"weight 2", 2}, {"weight 1 (uniform)", 1}}) {
      core::MinimStrategy::Params p;
      p.weights.old_color_weight = w;
      minim_variant_row(table, label, p, runs, seed, false);
    }
    std::cout << table.render() << "\n";
  }

  // ---- C: CP identity order ----
  {
    util::Options forwarded = options;
    auto sweep =
        bench::sweep_options_from(options, {"cp", "cp-lowest", "cp-exact", "minim"});
    sweep.runs = runs;
    sweep.seed = seed;
    const auto points = sim::sweep_join_vs_n({80}, sweep);
    bench::print_series("C. CP variants, recodings (80 joins)", "N", points,
                        bench::Metric::kRecodings, options, "ablation_cp_order");
    bench::print_series("C'. CP variants, max color (80 joins)", "N", points,
                        bench::Metric::kColor, options, "ablation_cp_color");
  }

  // ---- D: BBB coloring order ----
  {
    auto sweep = bench::sweep_options_from(
        options, {"bbb", "bbb-dsatur", "bbb-largest", "bbb-identity"});
    sweep.runs = runs;
    sweep.seed = seed;
    const auto points = sim::sweep_join_vs_n({80}, sweep);
    bench::print_series("D. BBB coloring order, max colors (80 joins)", "N", points,
                        bench::Metric::kColor, options, "ablation_bbb_order");
  }

  // ---- E: move semantics ----
  {
    util::TextTable table("E. Minim move semantics (40 nodes, 3 movement rounds)");
    table.set_header({"variant", "max color", "delta recodings"});
    core::MinimStrategy::Params p;
    minim_variant_row(table, "mover keeps preference (Fig 8)", p, runs, seed, true);
    p.move_clears_mover = true;
    minim_variant_row(table, "mover rejoins uncolored (Thm 4.4.1)", p, runs, seed, true);
    std::cout << table.render() << "\n";
  }
  return 0;
}
