// google-benchmark microbenchmarks for the algorithmic kernels:
// max-weight matching, conflict-graph coloring, spatial-grid queries,
// the end-to-end join operation, the batched recolor paths (dirty-component
// decomposition; serial vs component-parallel propagation), and the CDMA
// PHY hot path.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "core/minim.hpp"
#include "matching/hungarian.hpp"
#include "net/conflict_graph.hpp"
#include "net/constraints.hpp"
#include "net/network.hpp"
#include "radio/phy.hpp"
#include "serve/engine.hpp"
#include "sim/trace.hpp"
#include "strategies/bbb.hpp"
#include "strategies/coloring.hpp"
#include "strategies/components.hpp"
#include "strategies/ordering.hpp"
#include "util/rng.hpp"

namespace {

using namespace minim;

matching::BipartiteGraph random_bipartite(std::uint32_t left, std::uint32_t right,
                                          double density, util::Rng& rng) {
  matching::BipartiteGraph g(left, right);
  for (std::uint32_t i = 0; i < left; ++i)
    for (std::uint32_t j = 0; j < right; ++j)
      if (rng.chance(density)) g.add_edge(i, j, rng.chance(0.3) ? 3 : 1);
  return g;
}

net::AdhocNetwork random_network(std::size_t n, double min_r, double max_r,
                                 util::Rng& rng) {
  net::AdhocNetwork network;
  for (std::size_t i = 0; i < n; ++i)
    network.add_node({{rng.uniform(0, 100), rng.uniform(0, 100)},
                      rng.uniform(min_r, max_r)});
  return network;
}

void BM_MaxWeightMatching(benchmark::State& state) {
  util::Rng rng(7);
  const auto size = static_cast<std::uint32_t>(state.range(0));
  const auto g = random_bipartite(size, size * 2, 0.5, rng);
  for (auto _ : state) {
    auto result = matching::max_weight_matching(g);
    benchmark::DoNotOptimize(result.total_weight);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MaxWeightMatching)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Complexity();

void BM_ConflictColoring(benchmark::State& state) {
  util::Rng rng(8);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto network = random_network(n, 20.5, 30.5, rng);
  for (auto _ : state) {
    net::CodeAssignment assignment;
    const auto colors = strategies::color_network(
        network, strategies::ColoringOrder::kSmallestLast, assignment);
    benchmark::DoNotOptimize(colors);
  }
}
BENCHMARK(BM_ConflictColoring)->Arg(40)->Arg(80)->Arg(120);

void BM_DSaturColoring(benchmark::State& state) {
  util::Rng rng(9);
  const auto network = random_network(80, 20.5, 30.5, rng);
  for (auto _ : state) {
    net::CodeAssignment assignment;
    const auto colors = strategies::color_network(
        network, strategies::ColoringOrder::kDSatur, assignment);
    benchmark::DoNotOptimize(colors);
  }
}
BENCHMARK(BM_DSaturColoring);

void BM_MinimJoin(benchmark::State& state) {
  util::Rng rng(10);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    net::AdhocNetwork network;
    net::CodeAssignment assignment;
    core::MinimStrategy minim;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const auto id = network.add_node(
          {{rng.uniform(0, 100), rng.uniform(0, 100)}, rng.uniform(20.5, 30.5)});
      minim.on_join(network, assignment, id);
    }
    const auto last = network.add_node({{50, 50}, 25.0});
    state.ResumeTiming();
    minim.on_join(network, assignment, last);
  }
}
BENCHMARK(BM_MinimJoin)->Arg(40)->Arg(80)->Arg(120)->Unit(benchmark::kMicrosecond);

void BM_ConflictPartners(benchmark::State& state) {
  util::Rng rng(11);
  const auto network = random_network(100, 20.5, 30.5, rng);
  const auto nodes = network.nodes();
  std::size_t i = 0;
  for (auto _ : state) {
    auto partners = net::conflict_partners(network, nodes[i % nodes.size()]);
    benchmark::DoNotOptimize(partners.data());
    ++i;
  }
}
BENCHMARK(BM_ConflictPartners);

// ---- conflict-graph maintenance: full build vs incremental update ----

void BM_ConflictGraphFullBuild(benchmark::State& state) {
  // Cost of constructing the CA1/CA2 adjacency from scratch — what every
  // event used to pay before the incremental cache.
  util::Rng rng(15);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto network = random_network(n, 20.5, 30.5, rng);
  for (auto _ : state) {
    auto cg = net::ConflictGraph::build_from(network.graph());
    benchmark::DoNotOptimize(cg.pair_count());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ConflictGraphFullBuild)->Arg(50)->Arg(100)->Arg(200)->Complexity();

void BM_ConflictGraphIncrementalMove(benchmark::State& state) {
  // Cost of one move event's cache deltas (includes digraph + grid upkeep);
  // compare against BM_ConflictGraphFullBuild at the same N.
  util::Rng rng(16);
  const auto n = static_cast<std::size_t>(state.range(0));
  auto network = random_network(n, 20.5, 30.5, rng);
  const auto nodes = network.nodes();
  std::size_t i = 0;
  for (auto _ : state) {
    network.set_position(nodes[i % nodes.size()],
                         {rng.uniform(0, 100), rng.uniform(0, 100)});
    benchmark::DoNotOptimize(network.conflict_graph().pair_count());
    ++i;
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ConflictGraphIncrementalMove)->Arg(50)->Arg(100)->Arg(200)->Complexity();

// ---- greedy coloring: scratch-buffer loops vs per-node allocation ----

/// The pre-cache greedy loop, kept verbatim for comparison: enumerate
/// conflict partners per node (allocating), then collect-sort-unique the
/// forbidden colors per node (allocating again).
net::Color greedy_color_legacy_alloc(const net::AdhocNetwork& network,
                                     net::CodeAssignment& assignment) {
  std::vector<std::vector<net::NodeId>> adj(network.id_bound());
  for (net::NodeId v : network.nodes()) {
    std::vector<net::NodeId> partners;
    const auto& g = network.graph();
    const auto& outs = g.out_neighbors(v);
    const auto& ins = g.in_neighbors(v);
    partners.insert(partners.end(), outs.begin(), outs.end());
    partners.insert(partners.end(), ins.begin(), ins.end());
    for (net::NodeId k : outs) {
      const auto& co_senders = g.in_neighbors(k);
      partners.insert(partners.end(), co_senders.begin(), co_senders.end());
    }
    std::sort(partners.begin(), partners.end());
    partners.erase(std::unique(partners.begin(), partners.end()), partners.end());
    const auto self = std::lower_bound(partners.begin(), partners.end(), v);
    if (self != partners.end() && *self == v) partners.erase(self);
    adj[v] = std::move(partners);
  }
  net::Color used = 0;
  for (net::NodeId v : network.nodes()) assignment.clear(v);
  for (net::NodeId v : network.nodes()) {
    std::vector<net::Color> forbidden;
    for (net::NodeId w : adj[v]) {
      const net::Color c = assignment.color(w);
      if (c != net::kNoColor) forbidden.push_back(c);
    }
    std::sort(forbidden.begin(), forbidden.end());
    forbidden.erase(std::unique(forbidden.begin(), forbidden.end()), forbidden.end());
    const net::Color c = net::lowest_free_color(forbidden);
    assignment.set_color(v, c);
    used = std::max(used, c);
  }
  return used;
}

void BM_GreedyColorLegacyAlloc(benchmark::State& state) {
  util::Rng rng(17);
  const auto network = random_network(100, 20.5, 30.5, rng);
  net::CodeAssignment assignment;
  for (auto _ : state)
    benchmark::DoNotOptimize(greedy_color_legacy_alloc(network, assignment));
}
BENCHMARK(BM_GreedyColorLegacyAlloc);

void BM_GreedyColorScratch(benchmark::State& state) {
  // Same identity-order coloring through the cached-adjacency scratch loop.
  util::Rng rng(17);
  const auto network = random_network(100, 20.5, 30.5, rng);
  net::CodeAssignment assignment;
  for (auto _ : state) {
    const auto colors = strategies::color_network(
        network, strategies::ColoringOrder::kIdentity, assignment);
    benchmark::DoNotOptimize(colors);
  }
}
BENCHMARK(BM_GreedyColorScratch);

// ---- BBB event handling: dirty-region vs from-scratch recolor ----

void bbb_power_toggle_loop(benchmark::State& state, bool incremental) {
  // Sparser deployment (200 nodes, ranges 10-15) so a power toggle dirties
  // a genuinely local region; dense fields degrade to the full path by the
  // fallback threshold and measure identically.
  util::Rng rng(18);
  auto network = random_network(200, 10.5, 15.5, rng);
  net::CodeAssignment assignment;
  strategies::BbbStrategy::Params params;
  params.incremental = incremental;
  strategies::BbbStrategy bbb(strategies::ColoringOrder::kSmallestLast, params);
  const auto nodes = network.nodes();
  // Seed the strategy's state with one full recolor.
  bbb.on_join(network, assignment, nodes.back());
  std::size_t i = 0;
  for (auto _ : state) {
    const net::NodeId v = nodes[i % nodes.size()];
    const double old_range = network.config(v).range;
    network.set_range(v, old_range < 13.0 ? old_range * 1.1 : old_range / 1.1);
    const auto report = bbb.on_power_change(network, assignment, v, old_range);
    benchmark::DoNotOptimize(report.changes.size());
    ++i;
  }
}

void BM_BbbEventFullRecolor(benchmark::State& state) {
  bbb_power_toggle_loop(state, /*incremental=*/false);
}
BENCHMARK(BM_BbbEventFullRecolor)->Unit(benchmark::kMicrosecond);

void BM_BbbEventDirtyRegion(benchmark::State& state) {
  bbb_power_toggle_loop(state, /*incremental=*/true);
}
BENCHMARK(BM_BbbEventDirtyRegion)->Unit(benchmark::kMicrosecond);

void BM_GridRebuildVsBruteForce(benchmark::State& state) {
  // Cost of one incremental move update (grid-backed) — compare against
  // BM_BruteForceRebuild below for the ablation.
  util::Rng rng(12);
  auto network = random_network(100, 20.5, 30.5, rng);
  const auto nodes = network.nodes();
  std::size_t i = 0;
  for (auto _ : state) {
    network.set_position(nodes[i % nodes.size()],
                         {rng.uniform(0, 100), rng.uniform(0, 100)});
    ++i;
  }
}
BENCHMARK(BM_GridRebuildVsBruteForce);

void BM_BruteForceRebuild(benchmark::State& state) {
  util::Rng rng(13);
  const auto network = random_network(100, 20.5, 30.5, rng);
  for (auto _ : state) {
    auto g = network.rebuild_graph_brute_force();
    benchmark::DoNotOptimize(g.edge_count());
  }
}
BENCHMARK(BM_BruteForceRebuild);

// ---- batched recolor: component decomposition + serial vs parallel ----

/// `clusters` far-apart clusters of `per_cluster` nodes each on a 4-wide
/// grid of centers — the decomposable regime the component-parallel
/// recolor path targets (distant dirty regions cannot interact).
net::AdhocNetwork clustered_network(std::size_t clusters,
                                    std::size_t per_cluster, util::Rng& rng) {
  net::AdhocNetwork network;
  for (std::size_t c = 0; c < clusters; ++c) {
    const double cx = static_cast<double>(c % 4) * 30.0 + 10.0;
    const double cy = static_cast<double>(c / 4) * 30.0 + 10.0;
    for (std::size_t i = 0; i < per_cluster; ++i)
      network.add_node({{cx + rng.uniform(-2.0, 2.0),
                         cy + rng.uniform(-2.0, 2.0)},
                        rng.uniform(2.0, 4.0)});
  }
  return network;
}

void BM_DirtyComponentDecompose(benchmark::State& state) {
  // One closure walk + union-find pass over every live node of a clustered
  // field — the fixed cost the parallel recolor pass pays before fan-out.
  util::Rng rng(19);
  const auto clusters = static_cast<std::size_t>(state.range(0));
  const auto network = clustered_network(clusters, 12, rng);

  strategies::DegeneracyOrderer orderer;
  const std::vector<net::NodeId> sequence = strategies::coloring_sequence(
      network, network.nodes(), strategies::ColoringOrder::kSmallestLast);
  orderer.rebuild_ranks(network, sequence);

  const std::vector<net::NodeId> seeds = network.nodes();
  strategies::DirtyComponents components;
  for (auto _ : state) {
    const bool ok = components.decompose(network.conflict_graph(),
                                         orderer.rank_index(), seeds,
                                         network.node_count());
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(components.count());
  }
  state.SetLabel(std::to_string(clusters) + " clusters x 12 nodes");
}
BENCHMARK(BM_DirtyComponentDecompose)->Arg(2)->Arg(4)->Arg(8);

void bbb_batch_recolor_loop(benchmark::State& state, std::size_t threads) {
  // One 64-event churn batch through the serving engine on a clustered
  // field, bounded path pinned on (gates loosened as in the parallel fuzz
  // soak) so serial and parallel runs compare propagation, not fallbacks.
  util::Rng rng(20);
  const auto clusters = static_cast<std::size_t>(state.range(0));
  const std::size_t per_cluster = 12;
  const std::size_t live = clusters * per_cluster;

  sim::Trace joins;
  sim::Trace churn;
  {
    const auto seeded = clustered_network(clusters, per_cluster, rng);
    for (net::NodeId v : seeded.nodes()) {
      sim::TraceEvent e;
      e.kind = sim::TraceEvent::Kind::kJoin;
      e.position = seeded.config(v).position;
      e.range = seeded.config(v).range;
      joins.push_back(e);
    }
  }
  for (std::size_t i = 0; i < 4096; ++i) {
    sim::TraceEvent e;
    e.kind = sim::TraceEvent::Kind::kPower;
    e.node = rng.below(live);
    e.range = rng.uniform(2.0, 4.0);
    churn.push_back(e);
  }

  strategies::BbbStrategy::Params params;
  params.bounded_propagation = true;
  params.full_recolor_fraction = 1.1;
  params.propagation_slack = 1.0;
  params.recolor_threads = threads;
  strategies::BbbStrategy bbb(strategies::ColoringOrder::kSmallestLast,
                              params);
  serve::AssignmentEngine engine(bbb);
  engine.apply_batch(joins);

  constexpr std::size_t kBatch = 64;
  std::size_t at = 0;
  for (auto _ : state) {
    if (at + kBatch > churn.size()) at = 0;
    const auto receipt = engine.apply_batch(
        std::span<const sim::TraceEvent>(churn.data() + at, kBatch));
    benchmark::DoNotOptimize(receipt.recoded);
    at += kBatch;
  }
  state.SetLabel(std::to_string(clusters) + " clusters, batch 64, threads " +
                 std::to_string(threads) + ", parallel batches " +
                 std::to_string(bbb.counters().parallel_events));
}

void BM_BbbBatchRecolorSerial(benchmark::State& state) {
  bbb_batch_recolor_loop(state, 1);
}
BENCHMARK(BM_BbbBatchRecolorSerial)
    ->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

void BM_BbbBatchRecolorParallel(benchmark::State& state) {
  bbb_batch_recolor_loop(state, 4);
}
BENCHMARK(BM_BbbBatchRecolorParallel)
    ->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

void BM_PhyAllTransmit(benchmark::State& state) {
  util::Rng rng(14);
  net::AdhocNetwork network;
  net::CodeAssignment assignment;
  core::MinimStrategy minim;
  for (int i = 0; i < 30; ++i) {
    const auto id = network.add_node(
        {{rng.uniform(0, 100), rng.uniform(0, 100)}, rng.uniform(15, 25)});
    minim.on_join(network, assignment, id);
  }
  radio::PhyParams params;
  params.packet_bits = 32;
  for (auto _ : state) {
    const auto report = radio::simulate_all_transmit(network, assignment, params, rng);
    benchmark::DoNotOptimize(report.total_bits);
  }
  state.SetLabel("30 nodes, 32-bit packets");
}
BENCHMARK(BM_PhyAllTransmit)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
