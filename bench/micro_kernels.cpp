// google-benchmark microbenchmarks for the algorithmic kernels:
// max-weight matching, conflict-graph coloring, spatial-grid queries,
// the end-to-end join operation, and the CDMA PHY hot path.

#include <benchmark/benchmark.h>

#include "core/minim.hpp"
#include "matching/hungarian.hpp"
#include "net/constraints.hpp"
#include "net/network.hpp"
#include "radio/phy.hpp"
#include "strategies/coloring.hpp"
#include "util/rng.hpp"

namespace {

using namespace minim;

matching::BipartiteGraph random_bipartite(std::uint32_t left, std::uint32_t right,
                                          double density, util::Rng& rng) {
  matching::BipartiteGraph g(left, right);
  for (std::uint32_t i = 0; i < left; ++i)
    for (std::uint32_t j = 0; j < right; ++j)
      if (rng.chance(density)) g.add_edge(i, j, rng.chance(0.3) ? 3 : 1);
  return g;
}

net::AdhocNetwork random_network(std::size_t n, double min_r, double max_r,
                                 util::Rng& rng) {
  net::AdhocNetwork network;
  for (std::size_t i = 0; i < n; ++i)
    network.add_node({{rng.uniform(0, 100), rng.uniform(0, 100)},
                      rng.uniform(min_r, max_r)});
  return network;
}

void BM_MaxWeightMatching(benchmark::State& state) {
  util::Rng rng(7);
  const auto size = static_cast<std::uint32_t>(state.range(0));
  const auto g = random_bipartite(size, size * 2, 0.5, rng);
  for (auto _ : state) {
    auto result = matching::max_weight_matching(g);
    benchmark::DoNotOptimize(result.total_weight);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MaxWeightMatching)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Complexity();

void BM_ConflictColoring(benchmark::State& state) {
  util::Rng rng(8);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto network = random_network(n, 20.5, 30.5, rng);
  for (auto _ : state) {
    net::CodeAssignment assignment;
    const auto colors = strategies::color_network(
        network, strategies::ColoringOrder::kSmallestLast, assignment);
    benchmark::DoNotOptimize(colors);
  }
}
BENCHMARK(BM_ConflictColoring)->Arg(40)->Arg(80)->Arg(120);

void BM_DSaturColoring(benchmark::State& state) {
  util::Rng rng(9);
  const auto network = random_network(80, 20.5, 30.5, rng);
  for (auto _ : state) {
    net::CodeAssignment assignment;
    const auto colors = strategies::color_network(
        network, strategies::ColoringOrder::kDSatur, assignment);
    benchmark::DoNotOptimize(colors);
  }
}
BENCHMARK(BM_DSaturColoring);

void BM_MinimJoin(benchmark::State& state) {
  util::Rng rng(10);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    net::AdhocNetwork network;
    net::CodeAssignment assignment;
    core::MinimStrategy minim;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const auto id = network.add_node(
          {{rng.uniform(0, 100), rng.uniform(0, 100)}, rng.uniform(20.5, 30.5)});
      minim.on_join(network, assignment, id);
    }
    const auto last = network.add_node({{50, 50}, 25.0});
    state.ResumeTiming();
    minim.on_join(network, assignment, last);
  }
}
BENCHMARK(BM_MinimJoin)->Arg(40)->Arg(80)->Arg(120)->Unit(benchmark::kMicrosecond);

void BM_ConflictPartners(benchmark::State& state) {
  util::Rng rng(11);
  const auto network = random_network(100, 20.5, 30.5, rng);
  const auto nodes = network.nodes();
  std::size_t i = 0;
  for (auto _ : state) {
    auto partners = net::conflict_partners(network, nodes[i % nodes.size()]);
    benchmark::DoNotOptimize(partners.data());
    ++i;
  }
}
BENCHMARK(BM_ConflictPartners);

void BM_GridRebuildVsBruteForce(benchmark::State& state) {
  // Cost of one incremental move update (grid-backed) — compare against
  // BM_BruteForceRebuild below for the ablation.
  util::Rng rng(12);
  auto network = random_network(100, 20.5, 30.5, rng);
  const auto nodes = network.nodes();
  std::size_t i = 0;
  for (auto _ : state) {
    network.set_position(nodes[i % nodes.size()],
                         {rng.uniform(0, 100), rng.uniform(0, 100)});
    ++i;
  }
}
BENCHMARK(BM_GridRebuildVsBruteForce);

void BM_BruteForceRebuild(benchmark::State& state) {
  util::Rng rng(13);
  const auto network = random_network(100, 20.5, 30.5, rng);
  for (auto _ : state) {
    auto g = network.rebuild_graph_brute_force();
    benchmark::DoNotOptimize(g.edge_count());
  }
}
BENCHMARK(BM_BruteForceRebuild);

void BM_PhyAllTransmit(benchmark::State& state) {
  util::Rng rng(14);
  net::AdhocNetwork network;
  net::CodeAssignment assignment;
  core::MinimStrategy minim;
  for (int i = 0; i < 30; ++i) {
    const auto id = network.add_node(
        {{rng.uniform(0, 100), rng.uniform(0, 100)}, rng.uniform(15, 25)});
    minim.on_join(network, assignment, id);
  }
  radio::PhyParams params;
  params.packet_bits = 32;
  for (auto _ : state) {
    const auto report = radio::simulate_all_transmit(network, assignment, params, rng);
    benchmark::DoNotOptimize(report.total_bits);
  }
  state.SetLabel("30 nodes, 32-bit packets");
}
BENCHMARK(BM_PhyAllTransmit)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
