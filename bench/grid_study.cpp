// Grid-study harness for the unified experiment API: a 2-axis parameter grid
// (N x raise_factor, the power-increase scenario) across several strategies,
// with trial-range sharding and bit-exact shard merging.
//
// Modes:
//   (default)           run the whole grid, print the summary table; with
//                       --orchestrate=K the run is driven across K
//                       self-spawned worker processes (see bench_util.hpp
//                       for the full orchestration flag set) and the merged
//                       result is bit-identical to the single-process run
//   --shard=i/k --out=F run global trials of shard i of k, write the shard
//                       CSV to F (default grid_shard_<i>of<k>.csv)
//   --merge=F1,F2,...   read shard CSVs, merge, print the summary table
//   --selfcheck[=k]     run unsharded, then k shards round-tripped through
//                       the CSV format, merge, and verify the merged result
//                       is bit-identical (exits non-zero on mismatch)
//
// Shared options:
//   --trials=N          total Monte-Carlo trials per grid point (default 100)
//   --seed=S            master seed (default 2001)
//   --threads=T         pool size (default 0 = hardware concurrency)
//   --ns=...            N axis values (default 40,60,80,100)
//   --factors=...       raise_factor axis values (default 1.5,2.5,3.5,4.5,5.5)
//   --strategies=...    strategy names (default minim,cp,bbb)
//   --csv-dir=DIR       also write DIR/grid_study.csv (one row per cell)
//   --save-experiment=F write the full per-trial experiment CSV to F (the
//                       artifact CI diffs between orchestrated and
//                       single-process runs)
//
// Sharding contract: trial t of grid point p always draws stream
// p * trials + t regardless of which process runs it, so
//   grid_study --shard=0/4 --out=s0.csv   ...   --shard=3/4 --out=s3.csv
//   grid_study --merge=s0.csv,s1.csv,s2.csv,s3.csv
// prints exactly what an unsharded run would — and
//   grid_study --orchestrate=4
// is that whole loop (planning, spawning, retrying, merging) in one flag,
// able to split grid points as well as trial ranges.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "../bench/bench_util.hpp"
#include "sim/experiment.hpp"
#include "sim/experiment_io.hpp"
#include "util/csv.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace {

using namespace minim;

struct StudyConfig {
  std::vector<double> ns;
  std::vector<double> factors;
  std::vector<std::string> strategies;
  sim::ExperimentOptions run;
};

StudyConfig config_from(const util::Options& options) {
  StudyConfig config;
  config.ns = bench::double_list_from(options, "ns", {40, 60, 80, 100});
  config.factors =
      bench::double_list_from(options, "factors", {1.5, 2.5, 3.5, 4.5, 5.5});
  config.strategies =
      bench::string_list_from(options, "strategies", {"minim", "cp", "bbb"});
  config.run.trials = static_cast<std::size_t>(options.get_int("trials", 100));
  config.run.seed = static_cast<std::uint64_t>(options.get_int("seed", 2001));
  config.run.threads = static_cast<std::size_t>(options.get_int("threads", 0));
  return config;
}

sim::Experiment make_experiment(const StudyConfig& config) {
  sim::ExperimentGrid grid;
  grid.base.kind = sim::ScenarioKind::kPower;
  grid.axes.push_back(sim::GridAxis{
      "n", config.ns, [](sim::ScenarioSpec& spec, double x) {
        spec.workload.n = static_cast<std::size_t>(x);
      }});
  grid.axes.push_back(sim::GridAxis{
      "raise_factor", config.factors,
      [](sim::ScenarioSpec& spec, double x) { spec.raise_factor = x; }});
  grid.strategies = config.strategies;
  return sim::Experiment(std::move(grid));
}

/// Strict digits-only parse for user-facing shard arguments; raw std::stoull
/// would terminate with an uncaught exception on a typo.
bool parse_size(const std::string& text, std::size_t& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return false;
  out = static_cast<std::size_t>(value);
  return true;
}

/// Global trial range of shard `index` of `count` (contiguous, near-equal).
std::pair<std::size_t, std::size_t> shard_range(std::size_t trials,
                                                std::size_t index,
                                                std::size_t count) {
  const std::size_t base = trials / count;
  const std::size_t extra = trials % count;
  const std::size_t begin = index * base + std::min(index, extra);
  return {begin, base + (index < extra ? 1 : 0)};
}

void print_result(const sim::ExperimentResult& result,
                  const util::Options& options) {
  util::TextTable table("Grid study: power increase (delta vs post-join state)");
  table.set_header({"N", "raisefactor", "strategy", "d max color",
                    "d recodings", "trials"});
  struct Row {
    util::RunningStats color;
    util::RunningStats recode;
  };
  std::vector<std::vector<std::string>> csv_rows;
  for (std::size_t p = 0; p < result.point_count(); ++p)
    for (std::size_t s = 0; s < result.strategy_count(); ++s) {
      Row row;
      for (const sim::ExperimentTrial& trial : result.cell(p, s).trials) {
        row.color.add(trial.delta_max_color());
        row.recode.add(trial.delta_recodings());
      }
      table.add_row({util::fmt_fixed(result.points[p][0], 0),
                     util::fmt_fixed(result.points[p][1], 1),
                     result.strategies[s],
                     util::fmt_fixed(row.color.mean(), 2) + " +- " +
                         util::fmt_fixed(row.color.ci95_halfwidth(), 2),
                     util::fmt_fixed(row.recode.mean(), 2) + " +- " +
                         util::fmt_fixed(row.recode.ci95_halfwidth(), 2),
                     std::to_string(row.color.count())});
      csv_rows.push_back(
          {util::fmt_fixed(result.points[p][0], 3),
           util::fmt_fixed(result.points[p][1], 3), result.strategies[s],
           std::to_string(row.color.count()), util::fmt_fixed(row.color.mean(), 6),
           util::fmt_fixed(row.color.ci95_halfwidth(), 6),
           util::fmt_fixed(row.recode.mean(), 6),
           util::fmt_fixed(row.recode.ci95_halfwidth(), 6)});
    }
  std::cout << table.render() << "\n";

  const std::string csv_dir = options.get("csv-dir", "");
  if (!csv_dir.empty()) {
    auto stream = util::open_csv(csv_dir + "/grid_study.csv");
    util::CsvWriter csv(stream);
    csv.header({"n", "raise_factor", "strategy", "trials", "d_color_mean",
                "d_color_ci95", "d_recodings_mean", "d_recodings_ci95"});
    for (const auto& row : csv_rows) csv.row(row);
    std::cout << "[csv] wrote " << csv_dir << "/grid_study.csv\n";
  }
}

/// --save-experiment=F: persist the full per-trial result (exact format) —
/// the artifact the CI equivalence gate compares across run modes.
void save_experiment_if_requested(const sim::ExperimentResult& result,
                                  const util::Options& options) {
  const std::string path = options.get("save-experiment", "");
  if (path.empty()) return;
  sim::write_experiment_csv_file(result, path);
  std::cout << "[csv] wrote " << path << " (full per-trial experiment)\n";
}

void expect(bool ok, const char* what, bool& all_ok) {
  if (!ok) {
    all_ok = false;
    std::cerr << "MISMATCH: " << what << "\n";
  }
}

bool results_identical(const sim::ExperimentResult& a,
                       const sim::ExperimentResult& b) {
  bool ok = true;
  expect(a.axis_names == b.axis_names && a.points == b.points &&
             a.strategies == b.strategies && a.total_trials == b.total_trials &&
             a.seed == b.seed && a.trial_begin == b.trial_begin &&
             a.trial_count == b.trial_count,
         "experiment metadata differs", ok);
  expect(a.cells.size() == b.cells.size(), "cell count differs", ok);
  if (!ok) return false;
  for (std::size_t c = 0; c < a.cells.size(); ++c) {
    const auto& ta = a.cells[c].trials;
    const auto& tb = b.cells[c].trials;
    expect(ta.size() == tb.size(), "trial count differs", ok);
    if (!ok) return false;
    for (std::size_t i = 0; i < ta.size(); ++i) {
      const bool same =
          ta[i].trial == tb[i].trial && ta[i].totals.events == tb[i].totals.events &&
          ta[i].totals.recodings == tb[i].totals.recodings &&
          ta[i].totals.messages == tb[i].totals.messages &&
          ta[i].totals.events_by_type == tb[i].totals.events_by_type &&
          ta[i].totals.recodings_by_type == tb[i].totals.recodings_by_type &&
          ta[i].final_max_color == tb[i].final_max_color &&
          ta[i].setup_max_color == tb[i].setup_max_color &&  // bit-exact
          ta[i].setup_recodings == tb[i].setup_recodings;
      expect(same, "per-trial results differ", ok);
      if (!ok) return false;
    }
  }
  return ok;
}

int run_selfcheck(const StudyConfig& config, std::size_t shard_count) {
  const sim::Experiment experiment = make_experiment(config);
  const auto start = std::chrono::steady_clock::now();
  const sim::ExperimentResult full = experiment.run(config.run);
  const double full_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::vector<sim::ExperimentResult> shards;
  for (std::size_t i = 0; i < shard_count; ++i) {
    sim::ExperimentOptions slice = config.run;
    const auto [begin, count] = shard_range(config.run.trials, i, shard_count);
    slice.trial_begin = begin;
    slice.trial_count = count;
    // Round-trip every shard through the persistence format, exactly as a
    // multi-process run would.
    std::stringstream io;
    sim::write_experiment_csv(experiment.run(slice), io);
    shards.push_back(sim::read_experiment_csv(io));
  }
  const sim::ExperimentResult merged = sim::merge_shards(std::move(shards));

  const bool ok = results_identical(full, merged);
  std::cout << "unsharded run: " << util::fmt_fixed(full_s, 2) << " s, "
            << full.point_count() << " points x " << full.strategy_count()
            << " strategies x " << full.total_trials << " trials\n"
            << "shard round-trip (" << shard_count << " shards, CSV in/out): "
            << (ok ? "PASS (bit-identical)" : "FAIL") << "\n";
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options options(argc, argv);
  // A fleet agent serves units for a remote driver; nothing else in this
  // harness applies to that invocation.
  if (bench::is_fleet_agent(options)) return bench::run_fleet_agent(options);
  const StudyConfig config = config_from(options);

  // Orchestration worker: run this unit's rectangle, write its shard CSV,
  // and say nothing on stdout (the driver collects the log).
  if (bench::is_worker(options)) {
    if (bench::run_worker_unit(options, make_experiment(config), config.run,
                               "grid_study"))
      return 0;
    std::cerr << "unknown --unit-tag for grid_study\n";
    return 2;
  }

  std::cout << "=== Grid study: N x raise_factor ===\n"
            << config.ns.size() << " x " << config.factors.size()
            << " grid, strategies:";
  for (const auto& s : config.strategies) std::cout << " " << s;
  std::cout << ", " << config.run.trials << " trials, seed " << config.run.seed
            << "\n\n";

  // --merge takes a comma list of shard files (plus any positional paths).
  if (options.has("merge")) {
    std::vector<std::string> paths = bench::string_list_from(options, "merge", {});
    paths.insert(paths.end(), options.positional().begin(),
                 options.positional().end());
    if (paths.empty()) {
      std::cerr << "--merge wants shard files (--merge=s0.csv,s1.csv,...)\n";
      return 2;
    }
    std::vector<sim::ExperimentResult> shards;
    for (const std::string& path : paths)
      shards.push_back(sim::read_experiment_csv_file(path));
    const sim::ExperimentResult merged = sim::merge_shards(std::move(shards));
    // The format is generic, but this harness's table/CSV are the 2-axis
    // N x raise_factor study — reject foreign shard files cleanly.
    if (merged.axis_names != std::vector<std::string>{"n", "raise_factor"}) {
      std::cerr << "merged shards are not an n x raise_factor grid study\n";
      return 2;
    }
    std::cout << "merged " << paths.size() << " shards ("
              << merged.total_trials << " trials)\n\n";
    save_experiment_if_requested(merged, options);
    print_result(merged, options);
    return 0;
  }

  if (options.has("selfcheck")) {
    // `--selfcheck` = 3 shards; `--selfcheck=k` picks the shard count.
    const std::string raw = options.get("selfcheck", "");
    std::size_t k = 3;
    if (!raw.empty() && !parse_size(raw, k)) {
      std::cerr << "--selfcheck wants a shard count (--selfcheck=4)\n";
      return 2;
    }
    return run_selfcheck(config, std::max<std::size_t>(2, k));
  }

  const std::string shard = options.get("shard", "");
  if (!shard.empty()) {
    const std::size_t slash = shard.find('/');
    std::size_t index = 0;
    std::size_t count = 0;
    if (slash == std::string::npos || !parse_size(shard.substr(0, slash), index) ||
        !parse_size(shard.substr(slash + 1), count)) {
      std::cerr << "--shard wants i/k (e.g. --shard=0/4)\n";
      return 2;
    }
    if (count == 0 || index >= count) {
      std::cerr << "--shard=" << shard << " out of range\n";
      return 2;
    }
    sim::ExperimentOptions slice = config.run;
    const auto [begin, trial_count] = shard_range(config.run.trials, index, count);
    slice.trial_begin = begin;
    slice.trial_count = trial_count;
    const std::string out = options.get(
        "out", "grid_shard_" + std::to_string(index) + "of" + std::to_string(count) +
                   ".csv");
    sim::write_experiment_csv_file(make_experiment(config).run(slice), out);
    std::cout << "shard " << index << "/" << count << ": global trials ["
              << begin << ", " << begin + trial_count << ") -> " << out << "\n";
    return 0;
  }

  const sim::ExperimentResult result = bench::run_experiment_cli(
      options, make_experiment(config), config.run, "grid_study");
  save_experiment_if_requested(result, options);
  print_result(result, options);
  return 0;
}
